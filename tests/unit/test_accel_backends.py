"""Parity and validation tests for the fast-path execution backends.

Every backend must reproduce the reference solvers to machine precision;
these tests pin that contract on the repo's validation cases
(Taylor-Green, Poiseuille channel, lid-driven cavity) and exercise the
configuration-matrix error paths of :func:`repro.accel.make_stepper`.
"""

import numpy as np
import pytest

from repro.accel import (BACKENDS, HAS_NUMBA, FusedMRCore, available_backends,
                         make_stepper, solver_caps, validate_backend)
from repro.boundary import HalfwayBounceBack
from repro.geometry import channel_2d, lid_driven_cavity, periodic_box
from repro.lattice import get_lattice
from repro.solver import (MRPSolver, PowerLawMRPSolver, channel_problem,
                          forced_channel_problem, make_solver,
                          periodic_problem)
from repro.solver.non_newtonian import power_law_force
from repro.validation import taylor_green_fields

SCHEMES = ("ST", "MR-P", "MR-R")
MACHINE_EPS = 1e-13


def run_pair(build, backend, steps=8):
    """Run reference and ``backend`` from identical state; return max diffs."""
    ref = build("reference")
    fast = build(backend)
    ref.run(steps)
    fast.run(steps)
    rho_r, u_r = ref.macroscopic()
    rho_f, u_f = fast.macroscopic()
    return (float(np.abs(rho_r - rho_f).max()),
            float(np.abs(u_r - u_f).max()))


def taylor_green_builder(scheme, lattice_name, shape, tau=0.8):
    lat = get_lattice(lattice_name)
    if lat.d == 2:
        rho0, u0 = taylor_green_fields(shape, 0.0, lat.viscosity(tau), 0.04)
    else:
        rng = np.random.default_rng(7)
        rho0 = 1 + 0.02 * rng.standard_normal(shape)
        u0 = 0.03 * rng.standard_normal((lat.d, *shape))
    return lambda backend: periodic_problem(scheme, lat, shape, tau,
                                            rho0=rho0, u0=u0, backend=backend)


def cavity_builder(scheme, n=10, tau=0.8):
    lat = get_lattice("D2Q9")
    wall_u = np.zeros((2, n, n))
    wall_u[0, :, -1] = 0.05
    bcs = [HalfwayBounceBack(wall_velocity=wall_u)]

    def build(backend):
        return make_solver(scheme, lat, lid_driven_cavity(n), tau,
                           boundaries=bcs, backend=backend)

    return build


class TestFusedParity:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("lattice_name,shape", [
        ("D2Q9", (20, 14)),
        ("D3Q19", (8, 7, 6)),
    ])
    def test_taylor_green_periodic(self, scheme, lattice_name, shape):
        """Fused == reference on periodic boxes, to machine precision."""
        drho, du = run_pair(
            taylor_green_builder(scheme, lattice_name, shape), "fused")
        assert drho < MACHINE_EPS
        assert du < MACHINE_EPS

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_poiseuille_channel(self, scheme):
        """Fused == reference with inlet/outlet + wall boundaries."""
        drho, du = run_pair(
            lambda backend: channel_problem(scheme, "D2Q9", (24, 12),
                                            tau=0.8, u_max=0.04,
                                            backend=backend), "fused")
        assert drho < MACHINE_EPS
        assert du < MACHINE_EPS

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_lid_driven_cavity(self, scheme):
        """Fused == reference with solid nodes and a moving-wall BC."""
        drho, du = run_pair(cavity_builder(scheme), "fused", steps=12)
        assert drho < MACHINE_EPS
        assert du < MACHINE_EPS

    def test_bulk_viscosity_split(self):
        """The two-relaxation trace split is fused identically."""
        lat = get_lattice("D2Q9")
        rho0, u0 = taylor_green_fields((16, 12), 0.0, lat.viscosity(0.8),
                                       0.04)

        def build(backend):
            return MRPSolver(lat, periodic_box((16, 12)), 0.8, tau_bulk=1.1,
                             rho0=rho0, u0=u0, backend=backend)

        drho, du = run_pair(build, "fused")
        assert drho < MACHINE_EPS
        assert du < MACHINE_EPS

    def test_gather_stream_mode_matches_roll(self):
        """The table-gather stream mode is the same permutation as roll."""
        lat = get_lattice("D2Q9")
        shape = (12, 10)
        rho0, u0 = taylor_green_fields(shape, 0.0, lat.viscosity(0.8), 0.04)

        def run_mode(mode):
            solver = periodic_problem("MR-P", lat, shape, 0.8,
                                      rho0=rho0, u0=u0)
            core = FusedMRCore(lat, shape, 0.8, scheme="MR-P", stream=mode)
            for _ in range(6):
                core.step(solver.m, solver.boundaries, None)
            return solver.m.copy()

        assert np.array_equal(run_mode("roll"), run_mode("gather"))

    def test_step_count_and_time_advance(self):
        solver = taylor_green_builder("ST", "D2Q9", (10, 8))("fused")
        solver.run(5)
        assert solver.time == 5


def forced_periodic_builder(scheme, lattice_name, shape, tau=0.8):
    """Forced periodic box with a random non-trivial initial state."""
    lat = get_lattice(lattice_name)
    rng = np.random.default_rng(3)
    u0 = 0.03 * (rng.random((lat.d, *shape)) - 0.5)
    force = np.zeros(lat.d)
    force[0] = 1.2e-5
    return lambda backend: make_solver(scheme, lat, periodic_box(shape), tau,
                                       u0=u0, force=force, backend=backend)


def power_law_channel_builder(lattice_name, exponent, tau=0.7, u_max=0.02):
    """Force-driven power-law channel (the fused variable-tau path)."""
    lat = get_lattice(lattice_name)
    shape = (16, 12) if lat.d == 2 else (8, 8, 6)
    if lat.d == 2:
        domain = channel_2d(*shape, with_io=False)
    else:
        from repro.geometry import channel_3d

        domain = channel_3d(*shape, with_io=False)
    consistency = lat.viscosity(tau)
    force = np.zeros(lat.d)
    force[0] = power_law_force(u_max, shape[1] - 2, consistency, exponent)
    return lambda backend: PowerLawMRPSolver(
        lat, domain, tau, boundaries=[HalfwayBounceBack()], force=force,
        consistency=consistency, exponent=exponent, backend=backend)


class TestFusedForcedParity:
    """The fused Guo-source path reproduces every forced reference solver."""

    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("lattice_name,shape", [
        ("D2Q9", (14, 10)),
        ("D3Q19", (7, 6, 5)),
    ])
    def test_forced_periodic(self, scheme, lattice_name, shape):
        """Fused == reference on forced periodic boxes."""
        drho, du = run_pair(
            forced_periodic_builder(scheme, lattice_name, shape), "fused")
        assert drho < MACHINE_EPS
        assert du < MACHINE_EPS

    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("lattice_name,shape", [
        ("D2Q9", (20, 12)),
        ("D3Q19", (8, 8, 6)),
    ])
    def test_forced_channel(self, scheme, lattice_name, shape):
        """Fused == reference on body-force-driven bounce-back channels."""
        drho, du = run_pair(
            lambda backend: forced_channel_problem(
                scheme, lattice_name, shape, tau=0.7, u_max=0.03,
                backend=backend), "fused", steps=10)
        assert drho < MACHINE_EPS
        assert du < MACHINE_EPS

    def test_time_dependent_force(self):
        """set_force between steps reaches the fused kernels too."""
        build = forced_periodic_builder("MR-P", "D2Q9", (12, 10))
        ref, fast = build("reference"), build("fused")
        for t in range(6):
            f = np.array([1e-5 * np.cos(0.3 * t), 0.5e-5 * np.sin(0.3 * t)])
            ref.set_force(f)
            fast.set_force(f)
            ref.step()
            fast.step()
        assert np.abs(ref.m - fast.m).max() < MACHINE_EPS


class TestFusedVariableTauParity:
    """The fused per-node tau_field path reproduces PowerLawMRPSolver."""

    @pytest.mark.parametrize("lattice_name", ["D2Q9", "D3Q19"])
    @pytest.mark.parametrize("exponent", [0.7, 1.3])
    def test_power_law_poiseuille(self, lattice_name, exponent):
        """Fused == reference for shear-thinning and shear-thickening."""
        drho, du = run_pair(
            power_law_channel_builder(lattice_name, exponent), "fused",
            steps=10)
        assert drho < MACHINE_EPS
        assert du < MACHINE_EPS

    def test_unforced_power_law_periodic(self):
        """Variable-tau collision without forcing is fused identically."""
        lat = get_lattice("D2Q9")
        rng = np.random.default_rng(11)
        u0 = 0.04 * (rng.random((2, 14, 10)) - 0.5)

        def build(backend):
            return PowerLawMRPSolver(lat, periodic_box((14, 10)), 0.8, u0=u0,
                                     consistency=0.06, exponent=0.8,
                                     backend=backend)

        drho, du = run_pair(build, "fused")
        assert drho < MACHINE_EPS
        assert du < MACHINE_EPS

    def test_tau_field_tracks_reference(self):
        """The relaxation field itself matches after several steps."""
        build = power_law_channel_builder("D2Q9", 0.7)
        ref, fast = build("reference"), build("fused")
        ref.run(8)
        fast.run(8)
        # The relaxation field is a nonlinear function of the strain rate
        # (exponent (n-1)/n), which amplifies ulp-level state differences;
        # compare it with a relative tolerance rather than MACHINE_EPS.
        rel = np.abs(ref.tau_field - fast.tau_field) / np.abs(ref.tau_field)
        assert rel.max() < 1e-12

    def test_apparent_viscosity_masks_solids(self):
        """apparent_viscosity reports NaN inside walls, finite in fluid."""
        solver = power_law_channel_builder("D2Q9", 0.7)("reference")
        solver.run(4)
        nu = solver.apparent_viscosity()
        assert np.isnan(nu[solver.domain.solid_mask]).all()
        assert np.isfinite(nu[solver.domain.fluid_mask]).all()


class TestBackendValidation:
    def test_unknown_backend_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown backend"):
            periodic_problem("ST", "D2Q9", (8, 8), 0.8, backend="cuda")

    def test_available_backends_subset(self):
        avail = available_backends()
        assert set(avail) <= set(BACKENDS)
        assert "reference" in avail and "fused" in avail
        assert ("numba" in avail) == HAS_NUMBA

    def test_reference_backend_needs_no_stepper(self):
        solver = periodic_problem("ST", "D2Q9", (8, 8), 0.8)
        assert make_stepper(solver) is None

    def test_uncertified_subclass_rejected_at_construction(self):
        """Subclasses that do not declare accel_caps never get fast paths.

        The capability handshake is an explicit per-class opt-in: a
        subclass inherits the parent's physics entry points but NOT its
        ``accel_caps``, so a physics-overriding subclass is rejected at
        construction time unless it certifies itself.
        """

        class UncertifiedMRP(MRPSolver):
            """Hypothetical subclass that never certified its physics."""

        lat = get_lattice("D2Q9")
        with pytest.raises(ValueError, match="accel_caps"):
            UncertifiedMRP(lat, periodic_box((8, 8)), 0.8, backend="fused")
        # And make_stepper on a reference-constructed instance agrees.
        solver = UncertifiedMRP(lat, periodic_box((8, 8)), 0.8)
        assert solver_caps(solver) is None
        with pytest.raises(ValueError, match="accel_caps"):
            make_stepper(solver, "fused")

    def test_certified_solvers_expose_caps(self):
        """Every shipped solver family declares its own capability set."""
        lat = get_lattice("D2Q9")
        st = periodic_problem("ST", "D2Q9", (8, 8), 0.8)
        mrp = periodic_problem("MR-P", "D2Q9", (8, 8), 0.8)
        mrr = periodic_problem("MR-R", "D2Q9", (8, 8), 0.8)
        pl = PowerLawMRPSolver(lat, periodic_box((8, 8)), 0.8,
                               consistency=0.05, exponent=0.7)
        assert solver_caps(st) == {"family": "st", "batched": True}
        assert solver_caps(mrp) == {"family": "mr", "scheme": "MR-P",
                                    "batched": True}
        assert solver_caps(mrr) == {"family": "mr", "scheme": "MR-R",
                                    "batched": True}
        # Variable-tau physics is per-node: certified for fused, but NOT
        # for lockstep batching.
        assert solver_caps(pl) == {"family": "mr", "scheme": "MR-P",
                                   "variable_tau": True}

    def test_forced_solver_accepted_for_fused(self):
        """Forcing no longer falls back: the fused stepper is built."""
        solver = periodic_problem("MR-P", "D2Q9", (8, 8), 0.8,
                                  force=np.array([1e-5, 0.0]))
        assert validate_backend(solver, "fused") is not None
        assert make_stepper(solver, "fused") is not None

    def test_validate_backend_reference_is_none(self):
        solver = periodic_problem("ST", "D2Q9", (8, 8), 0.8)
        assert validate_backend(solver, "reference") is None

    def test_st_non_bgk_collision_rejected_at_construction(self):
        """Only the plain BGK collision is fused for the ST family."""
        from repro.core.collision import TRTCollision
        from repro.solver import STSolver

        lat = get_lattice("D2Q9")
        with pytest.raises(ValueError, match="BGK"):
            STSolver(lat, periodic_box((8, 8)), 0.8,
                     collision=TRTCollision(0.8), backend="fused")

    def test_variable_tau_limited_to_mr_p_core(self):
        """The fused core guards its per-node tau_field to MR-P."""
        lat = get_lattice("D2Q9")
        core = FusedMRCore(lat, (8, 8), 0.8, scheme="MR-R")
        solver = periodic_problem("MR-R", "D2Q9", (8, 8), 0.8)
        tau_field = np.full((8, 8), 0.8)
        with pytest.raises(ValueError, match="MR-P"):
            core.step(solver.m, [], None, solver.telemetry,
                      tau_field=tau_field)

    @pytest.mark.skipif(HAS_NUMBA, reason="numba is installed here")
    def test_numba_missing_raises_at_construction(self):
        """A missing optional extra fails eagerly, not ten minutes in."""
        with pytest.raises(RuntimeError, match="numba is not installed"):
            periodic_problem("ST", "D2Q9", (8, 8), 0.8, backend="numba")


@pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")
class TestNumbaParity:
    """JIT backend parity — runs only where the optional extra exists."""

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_taylor_green_periodic(self, scheme):
        drho, du = run_pair(
            taylor_green_builder(scheme, "D2Q9", (16, 12)), "numba")
        assert drho < MACHINE_EPS
        assert du < MACHINE_EPS

    def test_boundaries_rejected_at_construction(self):
        with pytest.raises(ValueError, match="periodic"):
            channel_problem("ST", "D2Q9", (16, 8), backend="numba")

    def test_forced_st_rejected_at_construction(self):
        with pytest.raises(ValueError, match="does not fuse body forcing"):
            periodic_problem("ST", "D2Q9", (8, 8), 0.8,
                             force=np.array([1e-5, 0.0]), backend="numba")

    @pytest.mark.parametrize("scheme", ["MR-P", "MR-R"])
    def test_forced_mr_parity(self, scheme):
        """Numba MR shares the NumPy collide, so forcing comes for free."""
        drho, du = run_pair(
            forced_periodic_builder(scheme, "D2Q9", (14, 10)), "numba")
        assert drho < MACHINE_EPS
        assert du < MACHINE_EPS
