"""Parity and validation tests for the fast-path execution backends.

Every backend must reproduce the reference solvers to machine precision;
these tests pin that contract on the repo's validation cases
(Taylor-Green, Poiseuille channel, lid-driven cavity) and exercise the
configuration-matrix error paths of :func:`repro.accel.make_stepper`.
"""

import numpy as np
import pytest

from repro.accel import (BACKENDS, HAS_NUMBA, FusedMRCore, available_backends,
                         make_stepper)
from repro.boundary import HalfwayBounceBack
from repro.geometry import lid_driven_cavity, periodic_box
from repro.lattice import get_lattice
from repro.solver import (MRPSolver, PowerLawMRPSolver, channel_problem,
                          make_solver, periodic_problem)
from repro.validation import taylor_green_fields

SCHEMES = ("ST", "MR-P", "MR-R")
MACHINE_EPS = 1e-13


def run_pair(build, backend, steps=8):
    """Run reference and ``backend`` from identical state; return max diffs."""
    ref = build("reference")
    fast = build(backend)
    ref.run(steps)
    fast.run(steps)
    rho_r, u_r = ref.macroscopic()
    rho_f, u_f = fast.macroscopic()
    return (float(np.abs(rho_r - rho_f).max()),
            float(np.abs(u_r - u_f).max()))


def taylor_green_builder(scheme, lattice_name, shape, tau=0.8):
    lat = get_lattice(lattice_name)
    if lat.d == 2:
        rho0, u0 = taylor_green_fields(shape, 0.0, lat.viscosity(tau), 0.04)
    else:
        rng = np.random.default_rng(7)
        rho0 = 1 + 0.02 * rng.standard_normal(shape)
        u0 = 0.03 * rng.standard_normal((lat.d, *shape))
    return lambda backend: periodic_problem(scheme, lat, shape, tau,
                                            rho0=rho0, u0=u0, backend=backend)


def cavity_builder(scheme, n=10, tau=0.8):
    lat = get_lattice("D2Q9")
    wall_u = np.zeros((2, n, n))
    wall_u[0, :, -1] = 0.05
    bcs = [HalfwayBounceBack(wall_velocity=wall_u)]

    def build(backend):
        return make_solver(scheme, lat, lid_driven_cavity(n), tau,
                           boundaries=bcs, backend=backend)

    return build


class TestFusedParity:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("lattice_name,shape", [
        ("D2Q9", (20, 14)),
        ("D3Q19", (8, 7, 6)),
    ])
    def test_taylor_green_periodic(self, scheme, lattice_name, shape):
        """Fused == reference on periodic boxes, to machine precision."""
        drho, du = run_pair(
            taylor_green_builder(scheme, lattice_name, shape), "fused")
        assert drho < MACHINE_EPS
        assert du < MACHINE_EPS

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_poiseuille_channel(self, scheme):
        """Fused == reference with inlet/outlet + wall boundaries."""
        drho, du = run_pair(
            lambda backend: channel_problem(scheme, "D2Q9", (24, 12),
                                            tau=0.8, u_max=0.04,
                                            backend=backend), "fused")
        assert drho < MACHINE_EPS
        assert du < MACHINE_EPS

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_lid_driven_cavity(self, scheme):
        """Fused == reference with solid nodes and a moving-wall BC."""
        drho, du = run_pair(cavity_builder(scheme), "fused", steps=12)
        assert drho < MACHINE_EPS
        assert du < MACHINE_EPS

    def test_bulk_viscosity_split(self):
        """The two-relaxation trace split is fused identically."""
        lat = get_lattice("D2Q9")
        rho0, u0 = taylor_green_fields((16, 12), 0.0, lat.viscosity(0.8),
                                       0.04)

        def build(backend):
            return MRPSolver(lat, periodic_box((16, 12)), 0.8, tau_bulk=1.1,
                             rho0=rho0, u0=u0, backend=backend)

        drho, du = run_pair(build, "fused")
        assert drho < MACHINE_EPS
        assert du < MACHINE_EPS

    def test_gather_stream_mode_matches_roll(self):
        """The table-gather stream mode is the same permutation as roll."""
        lat = get_lattice("D2Q9")
        shape = (12, 10)
        rho0, u0 = taylor_green_fields(shape, 0.0, lat.viscosity(0.8), 0.04)

        def run_mode(mode):
            solver = periodic_problem("MR-P", lat, shape, 0.8,
                                      rho0=rho0, u0=u0)
            core = FusedMRCore(lat, shape, 0.8, scheme="MR-P", stream=mode)
            for _ in range(6):
                core.step(solver.m, solver.boundaries, None)
            return solver.m.copy()

        assert np.array_equal(run_mode("roll"), run_mode("gather"))

    def test_step_count_and_time_advance(self):
        solver = taylor_green_builder("ST", "D2Q9", (10, 8))("fused")
        solver.run(5)
        assert solver.time == 5


class TestBackendValidation:
    def test_unknown_backend_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown backend"):
            periodic_problem("ST", "D2Q9", (8, 8), 0.8, backend="cuda")

    def test_available_backends_subset(self):
        avail = available_backends()
        assert set(avail) <= set(BACKENDS)
        assert "reference" in avail and "fused" in avail
        assert ("numba" in avail) == HAS_NUMBA

    def test_reference_backend_needs_no_stepper(self):
        solver = periodic_problem("ST", "D2Q9", (8, 8), 0.8)
        assert make_stepper(solver) is None

    def test_physics_subclass_rejected(self):
        """Subclasses overriding physics must not get the fused kernels."""
        lat = get_lattice("D2Q9")
        solver = PowerLawMRPSolver(lat, periodic_box((8, 8)), 0.8,
                                   consistency=0.05, exponent=0.7)
        with pytest.raises(ValueError, match="subclass"):
            make_stepper(solver, "fused")

    def test_forced_solver_rejected(self):
        solver = periodic_problem("MR-P", "D2Q9", (8, 8), 0.8)
        solver.force = np.array([1e-5, 0.0])
        with pytest.raises(ValueError, match="forcing"):
            make_stepper(solver, "fused")

    @pytest.mark.skipif(HAS_NUMBA, reason="numba is installed here")
    def test_numba_missing_raises_at_first_step(self):
        solver = periodic_problem("ST", "D2Q9", (8, 8), 0.8,
                                  backend="numba")
        with pytest.raises(RuntimeError, match="numba is not installed"):
            solver.run(1)


@pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")
class TestNumbaParity:
    """JIT backend parity — runs only where the optional extra exists."""

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_taylor_green_periodic(self, scheme):
        drho, du = run_pair(
            taylor_green_builder(scheme, "D2Q9", (16, 12)), "numba")
        assert drho < MACHINE_EPS
        assert du < MACHINE_EPS

    def test_boundaries_rejected(self):
        solver = channel_problem("ST", "D2Q9", (16, 8), backend="numba")
        with pytest.raises(ValueError, match="periodic"):
            solver.run(1)
