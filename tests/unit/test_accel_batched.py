"""Per-member parity of the batched fused cores against independent runs.

The contract of :mod:`repro.accel.batched` is that every member of a
batched ensemble reproduces its own independent ``backend="fused"`` run
to machine precision — the batch axis is a dispatch-amortization device,
never a physics change. These tests pin that across ST / MR-P / MR-R,
D2Q9 and D3Q19, heterogeneous per-member relaxation times and forcing,
plus the constructor/stream validation and steady-state allocation
behavior of the cores.
"""

import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.accel.batched import (
    BatchedFusedMRCore,
    BatchedFusedSTCore,
    _as_taus,
)
from repro.ensemble import EnsembleRunner
from repro.lattice import get_lattice
from repro.solver import forced_channel_problem, periodic_problem
from repro.validation import taylor_green_fields

SCHEMES = ("ST", "MR-P", "MR-R")
MACHINE_EPS = 1e-15


def periodic_member(scheme, lattice_name, shape, tau, seed):
    """One fused periodic solver with member-specific initial state."""
    lat = get_lattice(lattice_name)
    if lat.d == 2:
        rho0, u0 = taylor_green_fields(shape, 0.0, lat.viscosity(tau),
                                       0.02 + 0.01 * seed)
    else:
        rng = np.random.default_rng(seed)
        rho0 = 1 + 0.02 * rng.standard_normal(shape)
        u0 = 0.03 * rng.standard_normal((lat.d, *shape))
    return periodic_problem(scheme, lat, shape, tau, rho0=rho0, u0=u0,
                            backend="fused")


def assert_members_match(solos, members):
    """Every enrolled member matches its independent twin to <= 1e-15."""
    for solo, member in zip(solos, members):
        rho_s, u_s = solo.macroscopic()
        rho_m, u_m = member.macroscopic()
        assert float(np.abs(rho_s - rho_m).max()) <= MACHINE_EPS
        assert float(np.abs(u_s - u_m).max()) <= MACHINE_EPS


class TestBatchedParity:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("lattice_name,shape", [
        ("D2Q9", (14, 10)),
        ("D3Q19", (6, 5, 4)),
    ])
    def test_heterogeneous_tau_periodic(self, scheme, lattice_name, shape):
        """Batched == B independent fused runs, member-specific tau/state."""
        taus = (0.6, 0.85, 1.3)
        build = lambda: [periodic_member(scheme, lattice_name, shape, tau, k)
                         for k, tau in enumerate(taus)]       # noqa: E731
        solos, members = build(), build()
        for s in solos:
            s.run(8)
        EnsembleRunner(members).run(8)
        assert_members_match(solos, members)
        assert all(m.time == 8 for m in members)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_heterogeneous_forcing(self, scheme):
        """Per-member Guo forcing (different tau AND u_max) stays exact."""
        params = [(0.7, 0.03), (0.9, 0.05), (1.2, 0.08), (0.62, 0.04)]
        build = lambda: [forced_channel_problem(scheme, "D2Q9", (16, 10),
                                                tau=tau, u_max=u,
                                                backend="fused")
                         for tau, u in params]                # noqa: E731
        solos, members = build(), build()
        for s in solos:
            s.run(10)
        EnsembleRunner(members).run(10)
        assert_members_match(solos, members)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_forcing_3d(self, scheme):
        build = lambda: [forced_channel_problem(scheme, "D3Q19", (8, 6, 5),
                                                tau=tau, u_max=0.04,
                                                backend="fused")
                         for tau in (0.8, 1.1)]               # noqa: E731
        solos, members = build(), build()
        for s in solos:
            s.run(6)
        EnsembleRunner(members).run(6)
        assert_members_match(solos, members)

    def test_roll_stream_matches_gather(self):
        """Both batched streaming modes are the same pure permutation."""
        build = lambda: [periodic_member("MR-P", "D2Q9", (12, 8), tau, k)
                         for k, tau in enumerate((0.7, 1.0))]  # noqa: E731
        a, b = build(), build()
        EnsembleRunner(a, stream="gather").run(5)
        EnsembleRunner(b, stream="roll").run(5)
        for ma, mb in zip(a, b):
            assert np.array_equal(ma.m, mb.m)

    @given(taus=st.lists(st.floats(0.55, 1.9), min_size=1, max_size=5))
    @settings(max_examples=10, deadline=None)
    def test_property_random_tau_vectors(self, taus):
        """Any legal tau vector: members track their independent runs."""
        taus = [round(t, 3) for t in taus]
        build = lambda: [periodic_member("MR-P", "D2Q9", (10, 8), tau, k)
                         for k, tau in enumerate(taus)]       # noqa: E731
        solos, members = build(), build()
        for s in solos:
            s.run(4)
        EnsembleRunner(members).run(4)
        assert_members_match(solos, members)


class TestCoreValidation:
    def test_taus_must_exceed_half(self):
        with pytest.raises(ValueError, match="exceed 1/2"):
            _as_taus([0.8, 0.5])

    def test_taus_must_be_1d(self):
        with pytest.raises(ValueError, match="1-D"):
            _as_taus([[0.8, 0.9]])

    def test_taus_must_be_nonempty(self):
        with pytest.raises(ValueError, match="non-empty"):
            _as_taus([])

    def test_batch_size_mismatch(self):
        with pytest.raises(ValueError, match="expected 3"):
            _as_taus([0.8, 0.9], batch=3)

    def test_mr_scheme_validated(self):
        with pytest.raises(ValueError, match="MR-P or MR-R"):
            BatchedFusedMRCore(get_lattice("D2Q9"), (8, 8), [0.8],
                               scheme="ST")

    def test_unknown_stream_mode(self):
        with pytest.raises(ValueError, match="streaming mode"):
            BatchedFusedSTCore(get_lattice("D2Q9"), (8, 8), [0.8],
                               stream="teleport")

    def test_auto_stream_resolves_to_gather(self):
        core = BatchedFusedSTCore(get_lattice("D2Q9"), (8, 8), [0.8, 0.9])
        assert core.stream_mode == "gather"
        assert core.batch == 2

    def test_boundary_list_length_mismatch(self):
        lat = get_lattice("D2Q9")
        core = BatchedFusedSTCore(lat, (6, 6), [0.8, 0.9])
        f = np.tile(lat.w[:, None, None], (2, 1, 6, 6))
        with pytest.raises(ValueError, match="boundary lists"):
            core.step(f, np.empty_like(f), boundaries=[[]])


class TestSteadyStateAllocations:
    def test_st_step_does_not_allocate_fields(self):
        """After warm-up a batched ST step allocates no per-call fields.

        NumPy's buffered ufunc iteration still allocates bounded chunk
        buffers (<= ~64 KB each, independent of field size), so the pin
        uses a field several times larger than that cap: a single
        transient ``(B, Q, N)`` allocation per step would push the peak
        past ``f.nbytes``.
        """
        lat = get_lattice("D2Q9")
        shape, batch = (48, 32), 8
        core = BatchedFusedSTCore(lat, shape,
                                  [0.6 + 0.05 * k for k in range(batch)])
        rng = np.random.default_rng(3)
        f = 1.0 + 0.01 * rng.standard_normal((batch, lat.q, *shape))
        scratch = np.empty_like(f)
        for _ in range(3):
            core.step(f, scratch)
        tracemalloc.start()
        try:
            for _ in range(5):
                core.step(f, scratch)
            current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert peak < f.nbytes // 4        # no per-step field allocation
        assert current < 64 * 1024         # and nothing is retained
