"""Error-path coverage across packages: every public entry point should
fail loudly and informatively on bad input."""

import numpy as np
import pytest

from repro.geometry import periodic_box
from repro.gpu import KernelProblem, LaunchConfig, V100
from repro.lattice import get_lattice


@pytest.fixture
def d2q9():
    return get_lattice("D2Q9")


class TestParallelErrors:
    def test_unknown_scheme(self):
        from repro.parallel import distributed_periodic_problem

        with pytest.raises(ValueError, match="unknown scheme"):
            distributed_periodic_problem("MRT", "D2Q9", (12, 8), 2)

    def test_shape_mismatch(self):
        from repro.parallel import distributed_channel_problem

        with pytest.raises(ValueError, match="shape"):
            distributed_channel_problem("ST", "D3Q19", (12, 8), 2)

    def test_bad_exchange_mode(self):
        from repro.parallel import distributed_periodic_problem

        with pytest.raises(ValueError, match="st_exchange"):
            distributed_periodic_problem("ST", "D2Q9", (12, 8), 2,
                                         st_exchange="compressed")


class TestMemoryErrors:
    def test_bad_itemsize(self):
        from repro.gpu.memory import GlobalArray, MemoryTracker

        with pytest.raises(ValueError, match="itemsize"):
            GlobalArray("x", 8, MemoryTracker(), itemsize=0)

    def test_unknown_access_kind(self):
        from repro.gpu.memory import MemoryTracker

        with pytest.raises(ValueError, match="kind"):
            MemoryTracker().record(np.array([0]), "modify")


class TestKernelErrors:
    def test_mr_kernel_tile_dim_mismatch(self, d2q9):
        from repro.gpu import MRKernel

        prob = KernelProblem(d2q9, (16, 16), 0.8)
        with pytest.raises(ValueError, match="tile_cross"):
            MRKernel(prob, V100, tile_cross=(4, 4))

    def test_indirect_kernel_all_solid(self, d2q9):
        from repro.gpu import STIndirectKernel

        prob = KernelProblem(d2q9, (8, 8), 0.8, mode="masked",
                             solid_mask=np.ones((8, 8), bool))
        with pytest.raises(ValueError, match="no fluid"):
            STIndirectKernel(prob, V100)

    def test_launch_thread_limit(self):
        from repro.gpu import validate_launch

        with pytest.raises(ValueError, match="threads"):
            validate_launch(V100, LaunchConfig(1, 4096))


class TestSolverErrors:
    def test_monitor_requires_solid_body(self, d2q9):
        from repro.analysis import MomentumExchangeForce
        from repro.solver import make_solver

        s = make_solver("ST", d2q9, periodic_box((6, 6)), 0.8)
        with pytest.raises(ValueError):
            MomentumExchangeForce(s)

    def test_force_monitor_bad_wall_velocity(self, d2q9):
        from repro.analysis import MomentumExchangeForce
        from repro.boundary import HalfwayBounceBack
        from repro.geometry import lid_driven_cavity
        from repro.solver import make_solver

        s = make_solver("ST", d2q9, lid_driven_cavity(8), 0.8,
                        boundaries=[HalfwayBounceBack()])
        with pytest.raises(ValueError, match="wall_velocity"):
            MomentumExchangeForce(s, wall_velocity=np.zeros((2, 3, 3)))

    def test_refinement_bad_tau(self):
        from repro.refinement import RefinedSimulation2D

        with pytest.raises(ValueError, match="tau"):
            RefinedSimulation2D((24, 12), (8, 16), 0.5)


class TestBenchErrors:
    def test_figure_data_unknown_lattice(self):
        from repro.bench import figure_data

        with pytest.raises(ValueError, match="unknown lattice"):
            figure_data("D4Q42", [(64, 64)])

    def test_best_tile_no_legal_config(self):
        from repro.perf import best_tile

        lat = get_lattice("D3Q19")
        # Prime cross extents above the divisor search bound: nothing to
        # tile with, so the tuner must refuse rather than guess.
        with pytest.raises(ValueError, match="no legal"):
            best_tile(lat, (67, 67, 64), V100, w_t_options=(3,))


class TestIOErrors:
    def test_restore_into_wrong_time_type(self, tmp_path, d2q9):
        from repro.io import restore_checkpoint, save_checkpoint
        from repro.solver import make_solver

        a = make_solver("MR-P", d2q9, periodic_box((6, 6)), 0.8)
        path = save_checkpoint(tmp_path / "c.npz", a)
        b = make_solver("MR-R", d2q9, periodic_box((6, 6)), 0.8)
        with pytest.raises(ValueError, match="scheme"):
            restore_checkpoint(path, b)
