"""Unit tests for Guo body-force coupling (distribution and moment space)."""

import numpy as np
import pytest

from repro.core import (
    apply_moment_space_force,
    collide_moments_projective,
    collide_moments_recursive,
    equilibrium,
    guo_source,
    moments_from_f,
    normalize_force,
)
from repro.geometry import periodic_box
from repro.lattice import get_lattice
from repro.solver import make_solver


@pytest.fixture
def d2q9():
    return get_lattice("D2Q9")


class TestNormalizeForce:
    def test_vector_broadcast(self, d2q9):
        f = normalize_force(d2q9, [1e-4, 0.0], (4, 5))
        assert f.shape == (2, 4, 5)
        assert np.allclose(f[0], 1e-4)

    def test_field_passthrough(self, d2q9, rng):
        field = rng.standard_normal((2, 4, 5))
        f = normalize_force(d2q9, field, (4, 5))
        assert np.allclose(f, field)
        assert f is not field                      # copy, not alias

    def test_bad_shape(self, d2q9):
        with pytest.raises(ValueError, match="force"):
            normalize_force(d2q9, np.zeros(3), (4, 5))


class TestGuoSourceMoments:
    """The defining moment identities of the Guo source term."""

    def _setup(self, lat, rng):
        grid = (3,) * lat.d
        u = 0.05 * rng.standard_normal((lat.d, *grid))
        force = 1e-3 * rng.standard_normal((lat.d, *grid))
        return u, force

    def test_zeroth_moment_vanishes(self, lattice, rng):
        u, force = self._setup(lattice, rng)
        s = guo_source(lattice, u, force, tau=0.8)
        assert np.allclose(s.sum(axis=0), 0, atol=1e-14)

    def test_first_moment(self, lattice, rng):
        u, force = self._setup(lattice, rng)
        tau = 0.8
        s = guo_source(lattice, u, force, tau)
        mom = np.einsum("qa,q...->a...", lattice.c.astype(float), s)
        assert np.allclose(mom, (1 - 0.5 / tau) * force, atol=1e-13)

    def test_second_hermite_moment(self, lattice, rng):
        """sum H2 S = (1 - 1/(2tau)) (u F + F u) up to lattice anisotropy."""
        u, force = self._setup(lattice, rng)
        tau = 0.7
        s = guo_source(lattice, u, force, tau)
        got = np.einsum("qt,q...->t...", lattice.h2_cols, s)
        for k, (a, b) in enumerate(lattice.pair_tuples):
            expected = (1 - 0.5 / tau) * (u[a] * force[b] + u[b] * force[a])
            # D3Q15/19 have imperfect 4th-order isotropy: allow small slack.
            assert np.allclose(got[k], expected, atol=2e-5), (a, b)

    def test_moment_space_matches_projection(self, lattice, rng):
        """apply_moment_space_force == moments of the full Guo source, for
        fully fourth-order-isotropic lattices."""
        if lattice.name in ("D3Q15", "D3Q19"):
            pytest.skip("anisotropic 4th moments: projection differs slightly")
        u, force = self._setup(lattice, rng)
        tau = 0.9
        s = guo_source(lattice, u, force, tau)
        proj = moments_from_f(lattice, s)
        m = np.zeros_like(proj)
        apply_moment_space_force(lattice, m, u, force, tau)
        # First moment: the solver adds F to j overall; the raw source
        # carries (1 - 1/(2 tau)) F (the rest enters via feq(u*)).
        assert np.allclose(proj[0], m[0], atol=1e-14)
        assert np.allclose(proj[1 + lattice.d:], m[1 + lattice.d:], atol=1e-13)


class TestForcedCollisions:
    def test_momentum_input_exact(self, paper_lattice):
        """One forced collision adds exactly F to the momentum."""
        lat = paper_lattice
        grid = (4,) * lat.d
        rng = np.random.default_rng(0)
        rho = 1 + 0.02 * rng.standard_normal(grid)
        u = 0.02 * rng.standard_normal((lat.d, *grid))
        f = equilibrium(lat, rho, u)
        m = moments_from_f(lat, f)
        force = np.zeros((lat.d, *grid))
        force[0] = 1e-3
        m_star = collide_moments_projective(lat, m, 0.8, force=force)
        assert np.allclose(m_star[1] - m[1], 1e-3)
        assert np.allclose(m_star[0], m[0])

    def test_recursive_reduces_to_projective_at_zero_velocity(self, d2q9):
        grid = (4, 4)
        rho = np.ones(grid)
        f = equilibrium(d2q9, rho, np.zeros((2, *grid)))
        m = moments_from_f(d2q9, f)
        force = np.zeros((2, *grid))
        force[1] = 5e-4
        from repro.core import f_from_moments

        fp = f_from_moments(
            d2q9, collide_moments_projective(d2q9, m, 0.8, force=force)
        )
        fr = collide_moments_recursive(d2q9, m, 0.8, force=force)
        # u* = F/(2 rho) != 0, so tiny higher-order differences ~ O(u*^3).
        assert np.allclose(fp, fr, atol=1e-9)

    def test_zero_force_is_noop(self, d2q9, rng):
        grid = (4, 4)
        rho = 1 + 0.02 * rng.standard_normal(grid)
        u = 0.02 * rng.standard_normal((2, *grid))
        m = moments_from_f(d2q9, equilibrium(d2q9, rho, u))
        zero = np.zeros((2, *grid))
        a = collide_moments_projective(d2q9, m, 0.8)
        b = collide_moments_projective(d2q9, m, 0.8, force=zero)
        assert np.allclose(a, b, atol=1e-15)


class TestForcedSolvers:
    @pytest.mark.parametrize("scheme", ["ST", "MR-P", "MR-R"])
    def test_uniform_acceleration(self, d2q9, scheme):
        """Free periodic fluid under constant force: momentum grows by
        N * F per step (plus the half-force shift in the reported u)."""
        n_steps = 8
        fx = 2e-4
        s = make_solver(scheme, d2q9, periodic_box((6, 6)), 0.8,
                        force=np.array([fx, 0.0]))
        s.run(n_steps)
        rho, u = s.macroscopic()
        px = (rho * u[0]).sum()
        expected = 36 * fx * n_steps + 36 * fx / 2
        assert px == pytest.approx(expected, rel=1e-10)

    def test_st_requires_bgk_for_forcing(self, d2q9):
        from repro.core import ProjectiveRegularizedCollision
        from repro.solver import STSolver

        with pytest.raises(ValueError, match="BGK"):
            STSolver(d2q9, periodic_box((4, 4)), 0.8,
                     collision=ProjectiveRegularizedCollision(0.8),
                     force=np.array([1e-4, 0.0]))

    def test_force_zeroed_in_walls(self, d2q9):
        from repro.geometry import channel_2d

        dom = channel_2d(6, 5, with_io=False)
        s = make_solver("MR-P", d2q9, dom, 0.8, force=np.array([1e-3, 0.0]))
        assert np.allclose(s.force[:, dom.solid_mask], 0.0)

    @pytest.mark.parametrize("scheme", ["ST", "MR-P", "MR-R"])
    def test_forced_poiseuille(self, scheme):
        """Steady body-force-driven channel matches the parabola."""
        from repro.solver import forced_channel_problem
        from repro.validation import poiseuille_profile

        s = forced_channel_problem(scheme, "D2Q9", (12, 22), tau=0.9,
                                   u_max=0.03)
        s.run_to_steady_state(tol=1e-10, check_interval=200, max_steps=60_000)
        ux = s.velocity()[0]
        ana = poiseuille_profile(22, 0.03)
        err = np.abs(ux[6, 1:-1] - ana[1:-1]).max() / 0.03
        # BGK carries the well-known tau-dependent bounce-back slip; the
        # regularized schemes are nearly exact for this flow.
        tol = 5e-3 if scheme == "ST" else 1e-3
        assert err < tol, (scheme, err)
