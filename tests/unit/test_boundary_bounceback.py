"""Unit tests for bounce-back boundaries."""

import numpy as np
import pytest

from repro.boundary import FullwayBounceBack, HalfwayBounceBack
from repro.core import stream_push
from repro.geometry import channel_2d, lid_driven_cavity
from repro.lattice import get_lattice


@pytest.fixture
def d2q9():
    return get_lattice("D2Q9")


def make_channel_state(lat, nx=8, ny=6, seed=0):
    domain = channel_2d(nx, ny, with_io=False)
    rng = np.random.default_rng(seed)
    f_star = lat.w[:, None, None] * (1 + 0.1 * rng.standard_normal((lat.q, nx, ny)))
    return domain, f_star


class TestHalfwayBounceBack:
    def test_reflects_wall_links(self, d2q9):
        domain, f_star = make_channel_state(d2q9)
        bb = HalfwayBounceBack().bind(d2q9, domain, 0.8)
        f_new = stream_push(d2q9, f_star)
        bb.post_stream(d2q9, f_new, f_star)
        # A fluid node at y=1 receives its c=(0,1) population from the wall
        # at y=0: it must equal its own pre-stream c=(0,-1) value.
        up = np.where((d2q9.c == (0, 1)).all(axis=1))[0][0]
        down = d2q9.opposite[up]
        assert np.allclose(f_new[up][:, 1], f_star[down][:, 1])

    def test_diagonal_links_reflected(self, d2q9):
        domain, f_star = make_channel_state(d2q9)
        bb = HalfwayBounceBack().bind(d2q9, domain, 0.8)
        f_new = stream_push(d2q9, f_star)
        bb.post_stream(d2q9, f_new, f_star)
        i = np.where((d2q9.c == (1, 1)).all(axis=1))[0][0]
        ibar = d2q9.opposite[i]
        # Node (x, 1) receives (1,1) from (x-1, 0): solid -> reflected.
        assert np.allclose(f_new[i][2:, 1], f_star[ibar][2:, 1])

    def test_interior_untouched(self, d2q9):
        domain, f_star = make_channel_state(d2q9)
        bb = HalfwayBounceBack().bind(d2q9, domain, 0.8)
        f_new = stream_push(d2q9, f_star)
        expected_interior = stream_push(d2q9, f_star)[:, :, 2:-2]
        bb.post_stream(d2q9, f_new, f_star)
        assert np.allclose(f_new[:, :, 2:-2], expected_interior)

    def test_no_solid_is_noop(self, d2q9):
        from repro.geometry import periodic_box

        domain = periodic_box((6, 6))
        rng = np.random.default_rng(1)
        f_star = rng.random((9, 6, 6))
        bb = HalfwayBounceBack().bind(d2q9, domain, 0.8)
        f_new = stream_push(d2q9, f_star)
        before = f_new.copy()
        bb.post_stream(d2q9, f_new, f_star)
        assert np.array_equal(f_new, before)

    def test_mass_conservation_closed_box(self, d2q9):
        """A closed cavity with resting walls conserves mass exactly."""
        from repro.solver import make_solver

        domain = lid_driven_cavity(8)
        rng = np.random.default_rng(2)
        u0 = np.zeros((2, 8, 8))
        u0[:, 2:6, 2:6] = 0.03 * rng.standard_normal((2, 4, 4))
        solver = make_solver("ST", d2q9, domain, 0.8,
                             boundaries=[HalfwayBounceBack()], u0=u0)
        m0 = solver.diagnostics.mass()
        solver.run(50)
        assert solver.diagnostics.mass() == pytest.approx(m0, rel=1e-12)

    def test_moving_wall_adds_momentum(self, d2q9):
        """A moving lid must inject x momentum into a quiescent cavity."""
        from repro.solver import make_solver

        n = 10
        domain = lid_driven_cavity(n)
        wall_u = np.zeros((2, n, n))
        wall_u[0, :, -1] = 0.05
        solver = make_solver("ST", d2q9, domain, 0.8,
                             boundaries=[HalfwayBounceBack(wall_velocity=wall_u)])
        solver.run(5)
        # Total momentum oscillates acoustically later on, but the early
        # transient and the near-lid flow must follow the lid direction.
        assert solver.diagnostics.momentum()[0] > 0
        u = solver.velocity()
        assert u[0][n // 2, -2] > 0

    def test_wall_velocity_shape_checked(self, d2q9):
        domain = lid_driven_cavity(6)
        bad = np.zeros((2, 5, 5))
        with pytest.raises(ValueError, match="wall_velocity"):
            HalfwayBounceBack(wall_velocity=bad).bind(d2q9, domain, 0.8)

    def test_no_slip_steady_state(self, d2q9):
        """Fluid at rest in a closed cavity stays exactly at rest."""
        from repro.solver import make_solver

        domain = lid_driven_cavity(7)
        solver = make_solver("MR-P", d2q9, domain, 0.8,
                             boundaries=[HalfwayBounceBack()])
        solver.run(10)
        assert solver.diagnostics.max_speed() == pytest.approx(0.0, abs=1e-14)


class TestFullwayBounceBack:
    def test_solid_nodes_reflect(self, d2q9):
        domain, f_star = make_channel_state(d2q9)
        fw = FullwayBounceBack().bind(d2q9, domain, 0.8)
        f_post_stream = stream_push(d2q9, f_star)
        f_coll = f_post_stream.copy()
        fw.post_collide(d2q9, f_coll, f_post_stream)
        solid = domain.solid_mask
        for i in range(d2q9.q):
            assert np.allclose(f_coll[i][solid],
                               f_post_stream[d2q9.opposite[i]][solid])

    def test_fluid_nodes_untouched(self, d2q9):
        domain, f_star = make_channel_state(d2q9)
        fw = FullwayBounceBack().bind(d2q9, domain, 0.8)
        f_post = stream_push(d2q9, f_star)
        f_coll = f_post.copy()
        fw.post_collide(d2q9, f_coll, f_post)
        fluid = ~domain.solid_mask
        assert np.allclose(f_coll[:, fluid], f_post[:, fluid])

    def test_noop_without_solids(self, d2q9):
        from repro.geometry import periodic_box

        fw = FullwayBounceBack().bind(d2q9, periodic_box((5, 5)), 0.8)
        f = np.random.default_rng(0).random((9, 5, 5))
        before = f.copy()
        fw.post_collide(d2q9, f, before)
        assert np.array_equal(f, before)
