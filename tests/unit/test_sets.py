"""Unit tests for the built-in velocity sets."""

import numpy as np
import pytest

from repro.lattice import available_lattices, get_lattice


class TestRegistry:
    def test_available(self):
        names = available_lattices()
        for expected in ("D1Q3", "D2Q9", "D3Q15", "D3Q19", "D3Q27"):
            assert expected in names

    def test_case_insensitive(self):
        assert get_lattice("d2q9") is get_lattice("D2Q9")

    def test_cached_singletons(self):
        assert get_lattice("D3Q19") is get_lattice("D3Q19")

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown lattice"):
            get_lattice("D4Q42")


class TestVelocitySets:
    def test_d2q9_shells(self):
        lat = get_lattice("D2Q9")
        speeds = np.sort((lat.c ** 2).sum(axis=1))
        assert list(speeds) == [0, 1, 1, 1, 1, 2, 2, 2, 2]

    def test_d3q19_shells(self):
        lat = get_lattice("D3Q19")
        speeds = (lat.c ** 2).sum(axis=1)
        assert (speeds == 0).sum() == 1
        assert (speeds == 1).sum() == 6
        assert (speeds == 2).sum() == 12
        assert (speeds > 2).sum() == 0       # no corner velocities on Q19

    def test_d3q27_shells(self):
        lat = get_lattice("D3Q27")
        speeds = (lat.c ** 2).sum(axis=1)
        assert (speeds == 3).sum() == 8      # the corner velocities

    def test_d3q15_shells(self):
        lat = get_lattice("D3Q15")
        speeds = (lat.c ** 2).sum(axis=1)
        assert (speeds == 0).sum() == 1
        assert (speeds == 1).sum() == 6
        assert (speeds == 3).sum() == 8

    def test_classical_weights(self):
        d2 = get_lattice("D2Q9")
        rest = np.where((d2.c == 0).all(axis=1))[0][0]
        assert d2.w[rest] == pytest.approx(4 / 9)
        d3 = get_lattice("D3Q19")
        rest = np.where((d3.c == 0).all(axis=1))[0][0]
        assert d3.w[rest] == pytest.approx(1 / 3)

    def test_cs2(self, lattice):
        # Single-speed lattices have cs2 = 1/3; multi-speed D3Q39 has 2/3.
        expected = 2 / 3 if lattice.name == "D3Q39" else 1 / 3
        assert lattice.cs2 == pytest.approx(expected)

    def test_fourth_moment_isotropy_d3q27(self):
        """Full single-speed Q27 satisfies fourth-order isotropy."""
        lat = get_lattice("D3Q27")
        c = lat.c.astype(float)
        m4 = np.einsum("q,qa,qb,qc,qd->abcd", lat.w, c, c, c, c)
        eye = np.eye(3)
        iso = lat.cs4 * (
            np.einsum("ab,cd->abcd", eye, eye)
            + np.einsum("ac,bd->abcd", eye, eye)
            + np.einsum("ad,bc->abcd", eye, eye)
        )
        assert np.allclose(m4, iso)

    def test_d3q19_fourth_moments(self):
        """D3Q19 satisfies the fourth-order relations used by Eq. 4."""
        lat = get_lattice("D3Q19")
        c = lat.c.astype(float)
        m4 = np.einsum("q,qa,qb,qc,qd->abcd", lat.w, c, c, c, c)
        assert m4[0, 0, 1, 1] == pytest.approx(lat.cs4)
        # Single-speed identity: c_a^4 = c_a^2, so the diagonal equals cs2.
        assert m4[0, 0, 0, 0] == pytest.approx(lat.cs2)
        # Sixth-order deficiency (why H3_xyz vanishes): no corner speeds.
        m6 = np.einsum("q,qa,qb,qc->abc", lat.w, c ** 2, c ** 2, c ** 2)
        assert m6[0, 1, 2] == pytest.approx(0.0)
