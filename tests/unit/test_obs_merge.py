"""Unit: merged distributed reports, imbalance attribution, trace export.

Covers the :func:`repro.obs.merge.merge_rank_reports` edge cases a real
cohort can produce (empty report lists, ranks missing ``wall_s``,
zero-step ranks), the halo-wait/load-imbalance attribution block, span
depth forwarding in :meth:`Telemetry.add_span` and the multi-rank Chrome
trace layout (one ``pid`` row per rank with ``process_name`` metadata).
"""

import json

import pytest

from repro.obs import (
    NULL_TELEMETRY,
    Telemetry,
    merge_rank_reports,
    write_chrome_trace,
)


def rank_report(rank, wall_s=1.0, steps=4, n_fluid=100, wait_s=0.25,
                **over):
    rep = {
        "rank": rank,
        "steps": steps,
        "n_fluid": n_fluid,
        "wall_s": wall_s,
        "exchange_wait_s": wait_s,
        "comm": {"bytes_sent": 800, "messages": 8, "steps": steps},
        "summary": {
            "counters": {"steps": steps},
            "phases": {
                "step": {"calls": steps, "total_s": wall_s,
                         "min_s": 0.1, "max_s": 0.4},
                "step/barrier": {"calls": 2 * steps, "total_s": wait_s,
                                 "min_s": 0.01, "max_s": 0.1},
            },
        },
    }
    rep.update(over)
    return rep


class TestMergeEdgeCases:
    def test_empty_cohort_merges_to_zeros(self):
        report = merge_rank_reports([])
        assert report["n_ranks"] == 0 and report["steps"] == 0
        assert report["mlups"] == 0.0 and report["wall_s"] == 0.0
        assert report["imbalance"]["imbalance_ratio"] == 1.0
        assert report["imbalance"]["slowest_rank"] is None
        json.dumps(report)                     # fully serializable

    def test_missing_wall_s_degrades_to_zero(self):
        rep = rank_report(0)
        del rep["wall_s"]
        report = merge_rank_reports([rep, rank_report(1, wall_s=2.0)])
        assert report["mlups_per_rank"][0]["mlups"] == 0.0
        assert report["wall_s_slowest_rank"] == 2.0
        assert report["imbalance"]["per_rank"][0]["exchange_wait_share"] == 0.0

    def test_zero_step_rank_contributes_nothing(self):
        report = merge_rank_reports([rank_report(0, steps=0, wall_s=0.0,
                                                 wait_s=0.0),
                                     rank_report(1)])
        assert report["steps"] == 4            # cohort pace from live ranks
        assert report["mlups_per_rank"][0]["mlups"] == 0.0
        assert report["mlups"] > 0

    def test_missing_summary_and_comm_tolerated(self):
        report = merge_rank_reports([{"rank": 0, "steps": 2,
                                      "n_fluid": 10, "wall_s": 0.5}])
        assert report["counters"] == {}
        assert report["comm"]["bytes_sent"] == 0
        # wait falls back to the (absent) barrier phase -> zero share
        assert report["imbalance"]["exchange_wait_s"] == 0.0

    def test_parent_wall_overrides_slowest(self):
        report = merge_rank_reports([rank_report(0)], wall_s=9.0)
        assert report["wall_s"] == 9.0
        assert report["wall_s_slowest_rank"] == 1.0


class TestImbalanceAttribution:
    def test_straggler_ratio_and_wait_share(self):
        report = merge_rank_reports([
            rank_report(0, wall_s=1.0, wait_s=0.5),
            rank_report(1, wall_s=3.0, wait_s=0.1),
        ])
        imb = report["imbalance"]
        assert imb["wall_s_mean"] == pytest.approx(2.0)
        assert imb["wall_s_slowest"] == 3.0
        assert imb["slowest_rank"] == 1
        assert imb["imbalance_ratio"] == pytest.approx(1.5)
        assert imb["exchange_wait_s"] == pytest.approx(0.6)
        assert imb["exchange_wait_share"] == pytest.approx(0.6 / 4.0)
        shares = {r["rank"]: r["exchange_wait_share"]
                  for r in imb["per_rank"]}
        assert shares[0] == pytest.approx(0.5)
        assert shares[1] == pytest.approx(0.1 / 3.0)

    def test_wait_falls_back_to_barrier_phase(self):
        rep = rank_report(0, wait_s=0.25)
        del rep["exchange_wait_s"]             # pre-events worker report
        imb = merge_rank_reports([rep])["imbalance"]
        assert imb["exchange_wait_s"] == pytest.approx(0.25)

    def test_balanced_cohort_reads_ratio_one(self):
        imb = merge_rank_reports([rank_report(0), rank_report(1)])["imbalance"]
        assert imb["imbalance_ratio"] == pytest.approx(1.0)

    def test_cohort_mlups_paced_by_slowest_rank(self):
        report = merge_rank_reports([
            rank_report(0, wall_s=1.0), rank_report(1, wall_s=2.0)])
        assert report["mlups"] == pytest.approx(200 * 4 / 2.0 / 1e6)


class TestSpanDepth:
    def test_add_span_forwards_depth(self):
        tel = Telemetry()
        tel.add_span("gpu/kernel", 0.0, 1.0, depth=2)
        assert tel.spans[-1].depth == 2

    def test_add_span_depth_defaults_to_zero(self):
        tel = Telemetry()
        tel.add_span("gpu/kernel", 0.0, 1.0)
        assert tel.spans[-1].depth == 0

    def test_null_telemetry_accepts_depth(self):
        NULL_TELEMETRY.add_span("z", 0.0, 1.0, depth=3)   # no-op, no raise


class TestMultiRankChromeTrace:
    def _registry(self, name):
        tel = Telemetry()
        with tel.phase("step"):
            with tel.phase("compute"):
                pass
        tel.count("steps")
        tel.gauge("who", hash(name) % 7)
        return tel

    def test_single_registry_back_compat(self, tmp_path):
        path = write_chrome_trace(self._registry("solo"),
                                  tmp_path / "t.json", pid=7)
        doc = json.loads(path.read_text())
        assert all(e["ph"] == "X" for e in doc["traceEvents"])
        assert {e["pid"] for e in doc["traceEvents"]} == {7}
        assert doc["otherData"]["counters"] == {"steps": 1}

    def test_rank_mapping_gets_pid_rows_and_labels(self, tmp_path):
        registries = {0: self._registry("r0"), 1: self._registry("r1")}
        doc = json.loads(write_chrome_trace(
            registries, tmp_path / "t.json").read_text())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {(m["pid"], m["args"]["name"]) for m in meta} \
            == {(0, "rank 0"), (1, "rank 1")}
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["pid"] for e in spans} == {0, 1}
        assert all(e["name"] in ("step", "compute") for e in spans)
        assert doc["otherData"]["counters"]["rank 1"] == {"steps": 1}

    def test_sequence_form_indexes_ranks(self, tmp_path):
        doc = json.loads(write_chrome_trace(
            [self._registry("a"), self._registry("b")],
            tmp_path / "t.json").read_text())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert [m["args"]["name"] for m in meta] == ["rank 0", "rank 1"]

    def test_span_depth_exported_in_args(self, tmp_path):
        tel = Telemetry()
        tel.add_span("step/compute", 0.0, 0.5, depth=1)
        doc = json.loads(write_chrome_trace(
            tel, tmp_path / "t.json").read_text())
        (span,) = doc["traceEvents"]
        assert span["args"] == {"path": "step/compute", "depth": 1}
