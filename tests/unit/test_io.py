"""Unit tests for snapshot and checkpoint I/O."""

import numpy as np
import pytest

from repro.io import (
    load_fields,
    restore_checkpoint,
    save_checkpoint,
    save_fields,
    write_vtk,
)
from repro.solver import make_solver, periodic_problem
from repro.lattice import get_lattice
from repro.geometry import periodic_box


class TestSnapshots:
    def test_npz_roundtrip(self, tmp_path, rng):
        rho = 1 + 0.01 * rng.standard_normal((6, 5))
        u = 0.02 * rng.standard_normal((2, 6, 5))
        path = save_fields(tmp_path / "snap.npz", rho, u, time=42,
                           extra_field=np.arange(3.0))
        data = load_fields(path)
        assert np.allclose(data["rho"], rho)
        assert np.allclose(data["u"], u)
        assert data["time"] == 42
        assert np.allclose(data["extra_field"], [0, 1, 2])

    def test_vtk_2d_structure(self, tmp_path, rng):
        rho = np.ones((4, 3))
        u = 0.01 * rng.standard_normal((2, 4, 3))
        path = write_vtk(tmp_path / "out.vtk", rho, u)
        text = path.read_text()
        assert "DIMENSIONS 4 3 1" in text
        assert "POINT_DATA 12" in text
        assert "SCALARS density double 1" in text
        assert "VECTORS velocity double" in text
        # 12 density lines between the lookup table and the vectors.
        assert text.count("\n") > 24

    def test_vtk_3d(self, tmp_path):
        rho = np.full((3, 3, 2), 1.1)
        u = np.zeros((3, 3, 3, 2))
        path = write_vtk(tmp_path / "out3.vtk", rho, u)
        assert "DIMENSIONS 3 3 2" in path.read_text()

    def test_vtk_rejects_bad_shapes(self, tmp_path):
        with pytest.raises(ValueError):
            write_vtk(tmp_path / "x.vtk", np.ones(5), np.zeros((1, 5)))
        with pytest.raises(ValueError):
            write_vtk(tmp_path / "x.vtk", np.ones((4, 4)), np.zeros((3, 4, 4)))

    def test_vtk_order_x_fastest(self, tmp_path):
        rho = np.arange(6.0).reshape(3, 2)       # rho[x, y]
        u = np.zeros((2, 3, 2))
        text = write_vtk(tmp_path / "o.vtk", rho, u).read_text()
        lines = text.splitlines()
        start = lines.index("LOOKUP_TABLE default") + 1
        vals = [float(v) for v in lines[start:start + 6]]
        # x fastest: (0,0),(1,0),(2,0),(0,1),(1,1),(2,1)
        assert vals == [0, 2, 4, 1, 3, 5]


class TestCheckpoints:
    def _solver(self, scheme, seed=0):
        rng = np.random.default_rng(seed)
        u0 = 0.02 * rng.standard_normal((2, 6, 6))
        return periodic_problem(scheme, "D2Q9", (6, 6), 0.8, u0=u0)

    @pytest.mark.parametrize("scheme", ["ST", "MR-P", "MR-R"])
    def test_roundtrip_continues_identically(self, tmp_path, scheme):
        a = self._solver(scheme)
        a.run(5)
        path = save_checkpoint(tmp_path / "ck.npz", a)

        b = self._solver(scheme)                  # same construction
        restore_checkpoint(path, b)
        assert b.time == 5
        a.run(5)
        b.run(5)
        ra, ua = a.macroscopic()
        rb, ub = b.macroscopic()
        assert np.allclose(ra, rb, atol=1e-14)
        assert np.allclose(ua, ub, atol=1e-14)

    def test_scheme_mismatch_rejected(self, tmp_path):
        a = self._solver("ST")
        path = save_checkpoint(tmp_path / "ck.npz", a)
        b = self._solver("MR-P")
        with pytest.raises(ValueError, match="scheme"):
            restore_checkpoint(path, b)

    def test_domain_mismatch_rejected(self, tmp_path):
        a = self._solver("ST")
        path = save_checkpoint(tmp_path / "ck.npz", a)
        lat = get_lattice("D2Q9")
        b = make_solver("ST", lat, periodic_box((7, 6)), 0.8)
        with pytest.raises(ValueError, match="domain"):
            restore_checkpoint(path, b)

    def test_mr_checkpoint_smaller_than_st(self, tmp_path):
        """The compression claim applies to checkpoints too (M < Q)."""
        st = save_checkpoint(tmp_path / "st.npz", self._solver("ST", 1))
        mr = save_checkpoint(tmp_path / "mr.npz", self._solver("MR-P", 1))
        assert mr.stat().st_size < st.stat().st_size
