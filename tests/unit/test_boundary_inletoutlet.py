"""Unit tests for velocity-inlet and pressure-outlet boundaries."""

import numpy as np
import pytest

from repro.boundary import Plane, PressureOutlet, VelocityInlet
from repro.core import equilibrium, macroscopic, stream_push
from repro.geometry import channel_2d, channel_3d
from repro.lattice import get_lattice


@pytest.fixture
def d2q9():
    return get_lattice("D2Q9")


class TestPlane:
    def test_inward(self):
        assert Plane(0, 0).inward == 1
        assert Plane(1, -1).inward == -1

    def test_face_index(self):
        assert Plane(0, 0).face_index((5, 4)) == (0, slice(None))
        assert Plane(0, -1).face_index((5, 4)) == (4, slice(None))
        assert Plane(1, -1).face_index((5, 4), offset=2) == (slice(None), 1)

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            Plane(0, 1)


class TestVelocityInlet:
    def _setup(self, lat, method, velocity=(0.05, 0.0)):
        domain = channel_2d(8, 6)
        inlet = VelocityInlet(Plane(0, 0), np.array(velocity), method=method)
        inlet.bind(lat, domain, tau=0.8)
        return domain, inlet

    @pytest.mark.parametrize("method", ["nebb", "regularized-fd"])
    def test_enforces_prescribed_velocity(self, d2q9, method):
        """After reconstruction, the inlet nodes carry the target velocity."""
        domain, inlet = self._setup(d2q9, method)
        rho = np.ones(domain.shape)
        u = np.zeros((2, *domain.shape))
        u[0] = 0.02                               # background flow
        f_star = equilibrium(d2q9, rho, u)
        f_new = stream_push(d2q9, f_star)
        inlet.post_stream(d2q9, f_new, f_star)
        r2, u2 = macroscopic(d2q9, f_new)
        active = domain.node_type[0] != 1         # non-solid inlet nodes
        assert np.allclose(u2[0][0][active], 0.05, atol=1e-10)
        assert np.allclose(u2[1][0][active], 0.0, atol=1e-10)

    def test_profile_velocity(self, d2q9):
        domain = channel_2d(8, 6)
        prof = np.zeros((2, 6))
        prof[0] = np.array([0, 0.01, 0.03, 0.03, 0.01, 0])
        inlet = VelocityInlet(Plane(0, 0), prof, method="nebb").bind(
            d2q9, domain, 0.8
        )
        f_star = equilibrium(d2q9, np.ones(domain.shape),
                             np.zeros((2, *domain.shape)))
        f_new = stream_push(d2q9, f_star)
        inlet.post_stream(d2q9, f_new, f_star)
        _, u2 = macroscopic(d2q9, f_new)
        assert np.allclose(u2[0][0][1:-1], prof[0][1:-1], atol=1e-10)

    def test_zou_he_density_relation(self, d2q9):
        """rho at the inlet follows (S0 + 2 S-)/(1 - u_n)."""
        domain, inlet = self._setup(d2q9, "nebb")
        rng = np.random.default_rng(3)
        f_star = d2q9.w[:, None, None] * (
            1 + 0.05 * rng.standard_normal((9, *domain.shape))
        )
        f_new = stream_push(d2q9, f_star)
        fslab = f_new[:, 0, :]
        cx = d2q9.c[:, 0]
        s0 = fslab[cx == 0].sum(axis=0)
        sm = fslab[cx < 0].sum(axis=0)
        expected_rho = (s0 + 2 * sm) / (1 - 0.05)
        inlet.post_stream(d2q9, f_new, f_star)
        rho, _ = macroscopic(d2q9, f_new)
        assert np.allclose(rho[0][1:-1], expected_rho[1:-1], atol=1e-12)

    def test_wrong_velocity_shape(self, d2q9):
        domain = channel_2d(8, 6)
        with pytest.raises(ValueError, match="velocity"):
            VelocityInlet(Plane(0, 0), np.zeros((2, 5))).bind(d2q9, domain, 0.8)

    def test_bad_method(self):
        with pytest.raises(ValueError, match="method"):
            VelocityInlet(Plane(0, 0), (0.01, 0.0), method="zou-he-deluxe")

    def test_axis_out_of_range(self, d2q9):
        domain = channel_2d(8, 6)
        with pytest.raises(ValueError, match="axis"):
            VelocityInlet(Plane(2, 0), (0.0, 0.0)).bind(d2q9, domain, 0.8)

    def test_3d_inlet(self):
        lat = get_lattice("D3Q19")
        domain = channel_3d(6, 5, 5)
        inlet = VelocityInlet(Plane(0, 0), np.array([0.03, 0, 0]),
                              method="nebb").bind(lat, domain, 0.8)
        f_star = equilibrium(lat, np.ones(domain.shape),
                             np.zeros((3, *domain.shape)))
        f_new = stream_push(lat, f_star)
        inlet.post_stream(lat, f_new, f_star)
        _, u = macroscopic(lat, f_new)
        active = domain.node_type[0] != 1
        assert np.allclose(u[0][0][active], 0.03, atol=1e-10)


class TestPressureOutlet:
    @pytest.mark.parametrize("method", ["nebb", "regularized-fd"])
    def test_enforces_density(self, d2q9, method):
        domain = channel_2d(8, 6)
        outlet = PressureOutlet(Plane(0, -1), rho_out=1.02, method=method,
                                tangential="zero").bind(d2q9, domain, 0.8)
        rho = np.ones(domain.shape)
        u = np.zeros((2, *domain.shape))
        u[0] = 0.03
        f_star = equilibrium(d2q9, rho, u)
        f_new = stream_push(d2q9, f_star)
        outlet.post_stream(d2q9, f_new, f_star)
        r2, _ = macroscopic(d2q9, f_new)
        assert np.allclose(r2[-1][1:-1], 1.02, atol=1e-10)

    def test_outflow_velocity_consistent(self, d2q9):
        """Outlet velocity follows from mass balance, stays near the flow."""
        domain = channel_2d(8, 6)
        outlet = PressureOutlet(Plane(0, -1), rho_out=1.0,
                                method="nebb").bind(d2q9, domain, 0.8)
        u = np.zeros((2, *domain.shape))
        u[0] = 0.04
        f_star = equilibrium(d2q9, np.ones(domain.shape), u)
        f_new = stream_push(d2q9, f_star)
        outlet.post_stream(d2q9, f_new, f_star)
        _, u2 = macroscopic(d2q9, f_new)
        assert np.allclose(u2[0][-1][1:-1], 0.04, atol=1e-3)

    def test_tangential_modes(self, d2q9):
        domain = channel_2d(8, 6)
        u = np.zeros((2, *domain.shape))
        u[0] = 0.03
        u[1] = 0.01                               # transverse component
        f_star = equilibrium(d2q9, np.ones(domain.shape), u)

        # NEBB only replaces the unknown populations, so the tangential
        # velocity is not enforced exactly; 'extrapolate' must nonetheless
        # land the outlet tangential velocity closer to the interior value.
        results = {}
        for mode in ("zero", "extrapolate"):
            outlet = PressureOutlet(Plane(0, -1), method="nebb",
                                    tangential=mode).bind(d2q9, domain, 0.8)
            f_new = stream_push(d2q9, f_star)
            outlet.post_stream(d2q9, f_new, f_star)
            _, u2 = macroscopic(d2q9, f_new)
            results[mode] = np.abs(u2[1][-1][2:-2] - 0.01).max()
        assert results["extrapolate"] < results["zero"]

    def test_bad_tangential(self):
        with pytest.raises(ValueError, match="tangential"):
            PressureOutlet(Plane(0, -1), tangential="mirror")


def _thin_domain(nx, ny=6):
    """A hand-built channel thinner than the factories allow."""
    from repro.geometry import SOLID, Domain

    nt = np.zeros((nx, ny), dtype=np.int8)
    nt[:, 0] = SOLID
    nt[:, -1] = SOLID
    return Domain(nt)


class TestThinDomainGuard:
    """regularized-fd needs >= 3 planes along the face axis at bind time.

    Its one-sided finite difference reads two interior planes; on a
    thinner domain ``face_index(offset=2)`` silently wraps to the face
    itself and produced garbage strain rates. The guard turns that into
    a bind-time error.
    """

    @pytest.mark.parametrize("make_bc", [
        lambda: VelocityInlet(Plane(0, 0), (0.03, 0.0),
                              method="regularized-fd"),
        lambda: PressureOutlet(Plane(0, -1), method="regularized-fd"),
    ])
    def test_fd_rejected_on_two_plane_domain(self, d2q9, make_bc):
        domain = _thin_domain(2)
        with pytest.raises(ValueError, match="at least 3 planes"):
            make_bc().bind(d2q9, domain, 0.8)

    def test_fd_accepted_on_three_plane_domain(self, d2q9):
        domain = channel_2d(3, 6)
        VelocityInlet(Plane(0, 0), (0.03, 0.0),
                      method="regularized-fd").bind(d2q9, domain, 0.8)

    def test_nebb_still_works_on_thin_domain(self, d2q9):
        """NEBB reads only the face plane, so thin domains stay legal."""
        domain = _thin_domain(2)
        inlet = VelocityInlet(Plane(0, 0), (0.03, 0.0),
                              method="nebb").bind(d2q9, domain, 0.8)
        f_star = equilibrium(d2q9, np.ones(domain.shape),
                             np.zeros((2, *domain.shape)))
        f_new = stream_push(d2q9, f_star)
        inlet.post_stream(d2q9, f_new, f_star)
