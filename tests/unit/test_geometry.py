"""Unit tests for domains and standard geometries."""

import pytest

from repro.geometry import (
    FLUID,
    INLET,
    OUTLET,
    SOLID,
    channel_2d,
    channel_3d,
    cylinder_in_channel,
    lid_driven_cavity,
    periodic_box,
)


class TestDomain:
    def test_masks_cached_and_frozen(self):
        d = channel_2d(8, 6)
        m1 = d.solid_mask
        assert d.solid_mask is m1
        with pytest.raises(ValueError):
            m1[0, 0] = True

    def test_node_type_frozen(self):
        d = periodic_box((4, 4))
        with pytest.raises(ValueError):
            d.node_type[0, 0] = SOLID

    def test_counts(self):
        d = channel_2d(10, 8)
        assert d.n_nodes == 80
        assert d.n_fluid == 10 * 8 - 2 * 10     # two wall rows

    def test_shape_ndim(self):
        d = channel_3d(6, 5, 4)
        assert d.shape == (6, 5, 4)
        assert d.ndim == 3


class TestChannel2D:
    def test_wall_placement(self):
        d = channel_2d(8, 6)
        nt = d.node_type
        assert (nt[:, 0] == SOLID).all()
        assert (nt[:, -1] == SOLID).all()
        assert (nt[1:-1, 1:-1] == FLUID).all()

    def test_io_placement(self):
        nt = channel_2d(8, 6).node_type
        assert (nt[0, 1:-1] == INLET).all()
        assert (nt[-1, 1:-1] == OUTLET).all()
        # Corners stay solid.
        assert nt[0, 0] == SOLID and nt[-1, -1] == SOLID

    def test_without_io(self):
        nt = channel_2d(8, 6, with_io=False).node_type
        assert (nt[0, 1:-1] == FLUID).all()

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            channel_2d(2, 6)


class TestChannel3D:
    def test_wall_placement(self):
        d = channel_3d(6, 5, 4)
        nt = d.node_type
        assert (nt[:, 0, :] == SOLID).all()
        assert (nt[:, -1, :] == SOLID).all()
        assert (nt[:, :, 0] == SOLID).all()
        assert (nt[:, :, -1] == SOLID).all()
        assert (nt[1:-1, 1:-1, 1:-1] == FLUID).all()

    def test_io_on_interior_faces_only(self):
        nt = channel_3d(6, 5, 4).node_type
        assert (nt[0, 1:-1, 1:-1] == INLET).all()
        assert (nt[-1, 1:-1, 1:-1] == OUTLET).all()
        assert nt[0, 0, 0] == SOLID


class TestOtherGeometries:
    def test_periodic_box_all_fluid(self):
        d = periodic_box((5, 5, 5))
        assert d.n_fluid == 125
        assert not d.solid_mask.any()

    def test_cavity_2d(self):
        d = lid_driven_cavity(7)
        nt = d.node_type
        assert (nt[0] == SOLID).all() and (nt[-1] == SOLID).all()
        assert (nt[:, 0] == SOLID).all() and (nt[:, -1] == SOLID).all()
        assert (nt[1:-1, 1:-1] == FLUID).all()

    def test_cavity_3d(self):
        d = lid_driven_cavity(5, ndim=3)
        assert d.n_fluid == 3 ** 3

    def test_cavity_bad_ndim(self):
        with pytest.raises(ValueError):
            lid_driven_cavity(5, ndim=4)

    def test_cylinder(self):
        d = cylinder_in_channel(30, 20, 10, 10, 4)
        nt = d.node_type
        assert nt[10, 10] == SOLID              # centre
        assert nt[10, 14] == SOLID              # on the radius (r = 4)
        assert nt[10, 15] == FLUID              # just outside
        assert nt[0, 10] == INLET
        # Obstacle must not touch the inlet.
        assert (nt[0] != SOLID).sum() == 18
