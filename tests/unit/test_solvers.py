"""Unit tests for the ST / MR-P / MR-R solver drivers."""

import numpy as np
import pytest

from repro.core import BGKCollision, ProjectiveRegularizedCollision
from repro.geometry import channel_2d, periodic_box
from repro.lattice import get_lattice
from repro.solver import (
    MRPSolver,
    MRRSolver,
    SCHEMES,
    STSolver,
    channel_problem,
    make_solver,
    periodic_problem,
)


@pytest.fixture
def d2q9():
    return get_lattice("D2Q9")


class TestConstruction:
    def test_scheme_names(self, d2q9):
        dom = periodic_box((4, 4))
        assert isinstance(make_solver("ST", d2q9, dom, 0.8), STSolver)
        assert isinstance(make_solver("mr-p", d2q9, dom, 0.8), MRPSolver)
        assert isinstance(make_solver("MR_R", d2q9, dom, 0.8), MRRSolver)
        with pytest.raises(ValueError, match="unknown scheme"):
            make_solver("LBGK", d2q9, dom, 0.8)

    def test_state_sizes_match_paper_model(self, d2q9):
        """2Q doubles/node for ST, 2M for MR (Table 2 footprint)."""
        dom = periodic_box((4, 4))
        assert make_solver("ST", d2q9, dom, 0.8).state_values_per_node == 18
        assert make_solver("MR-P", d2q9, dom, 0.8).state_values_per_node == 12
        lat3 = get_lattice("D3Q19")
        dom3 = periodic_box((3, 3, 3))
        assert make_solver("ST", lat3, dom3, 0.8).state_values_per_node == 38
        assert make_solver("MR-R", lat3, dom3, 0.8).state_values_per_node == 20

    def test_dimension_mismatch(self, d2q9):
        with pytest.raises(ValueError, match="dimension"):
            STSolver(d2q9, periodic_box((3, 3, 3)), 0.8)

    def test_invalid_tau(self, d2q9):
        with pytest.raises(ValueError, match="tau"):
            STSolver(d2q9, periodic_box((4, 4)), 0.5)

    def test_bad_u0_shape(self, d2q9):
        with pytest.raises(ValueError, match="u0"):
            STSolver(d2q9, periodic_box((4, 4)), 0.8, u0=np.zeros((2, 5, 4)))

    def test_initial_state_is_equilibrium(self, d2q9, rng):
        shape = (5, 5)
        rho0 = 1 + 0.02 * rng.standard_normal(shape)
        u0 = 0.02 * rng.standard_normal((2, *shape))
        for scheme in SCHEMES:
            s = make_solver(scheme, d2q9, periodic_box(shape), 0.8,
                            rho0=rho0, u0=u0)
            rho, u = s.macroscopic()
            assert np.allclose(rho, rho0)
            assert np.allclose(u, u0)

    def test_solid_nodes_initialized_at_rest(self, d2q9):
        dom = channel_2d(6, 5, with_io=False)
        s = make_solver("MR-P", d2q9, dom, 0.8,
                        u0=np.full((2, 6, 5), 0.03))
        rho, u = s.macroscopic()
        assert np.allclose(u[:, dom.solid_mask], 0.0)
        assert np.allclose(rho[dom.solid_mask], 1.0)

    def test_collision_override_st(self, d2q9):
        s = STSolver(d2q9, periodic_box((4, 4)), 0.8,
                     collision=ProjectiveRegularizedCollision(0.8))
        assert isinstance(s.collision, ProjectiveRegularizedCollision)
        with pytest.raises(ValueError, match="tau"):
            STSolver(d2q9, periodic_box((4, 4)), 0.8,
                     collision=BGKCollision(0.9))


class TestStepping:
    def test_uniform_flow_is_invariant(self, d2q9):
        """A uniform periodic flow is an exact fixed point of all schemes."""
        shape = (6, 6)
        u0 = np.zeros((2, *shape))
        u0[0] = 0.05
        for scheme in SCHEMES:
            s = make_solver(scheme, d2q9, periodic_box(shape), 0.7, u0=u0)
            s.run(5)
            rho, u = s.macroscopic()
            assert np.allclose(rho, 1.0, atol=1e-13), scheme
            assert np.allclose(u[0], 0.05, atol=1e-13), scheme

    def test_mass_momentum_conserved_periodic(self, d2q9, rng):
        shape = (6, 6)
        u0 = 0.03 * rng.standard_normal((2, *shape))
        for scheme in SCHEMES:
            s = make_solver(scheme, d2q9, periodic_box(shape), 0.8, u0=u0)
            m0 = s.diagnostics.mass()
            p0 = s.diagnostics.momentum()
            s.run(20)
            assert s.diagnostics.mass() == pytest.approx(m0, rel=1e-12)
            assert np.allclose(s.diagnostics.momentum(), p0, atol=1e-12)

    def test_time_counter(self, d2q9):
        s = make_solver("ST", d2q9, periodic_box((4, 4)), 0.8)
        s.run(7)
        assert s.time == 7

    def test_callback(self, d2q9):
        calls = []
        s = make_solver("MR-P", d2q9, periodic_box((4, 4)), 0.8)
        s.run(10, callback=lambda sv: calls.append(sv.time), callback_interval=3)
        assert calls == [3, 6, 9]

    def test_run_to_steady_state_immediate(self, d2q9):
        s = make_solver("ST", d2q9, periodic_box((4, 4)), 0.8)
        steps = s.run_to_steady_state(tol=1e-12, check_interval=5)
        assert steps == 5                          # rest state: instant

    def test_run_to_steady_state_timeout(self, d2q9, rng):
        u0 = 0.05 * rng.standard_normal((2, 8, 8))
        s = make_solver("ST", d2q9, periodic_box((8, 8)), 2.0, u0=u0)
        with pytest.raises(RuntimeError, match="no steady state"):
            s.run_to_steady_state(tol=1e-16, check_interval=5, max_steps=10)


class TestPresets:
    def test_channel_problem_shapes(self):
        s = channel_problem("MR-P", "D2Q9", (12, 8), tau=0.8)
        assert s.domain.shape == (12, 8)
        assert len(s.boundaries) == 3

    def test_channel_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            channel_problem("ST", "D3Q19", (12, 8))

    def test_periodic_problem(self, rng):
        u0 = 0.02 * rng.standard_normal((2, 6, 6))
        s = periodic_problem("MR-R", "D2Q9", (6, 6), 0.8, u0=u0)
        assert not s.boundaries
        assert np.allclose(s.velocity(), u0)

    def test_channel_inlet_profile_3d(self):
        from repro.solver.presets import channel_inlet_profile

        lat = get_lattice("D3Q19")
        u = channel_inlet_profile(lat, (10, 7, 9), 0.05)
        assert u.shape == (3, 7, 9)
        assert u[0].max() == pytest.approx(0.05)
        assert np.allclose(u[0][0, :], 0)          # rim at rest
        assert np.allclose(u[1:], 0)

    def test_start_from_rest(self):
        s = channel_problem("ST", "D2Q9", (10, 6), start_from_profile=False)
        assert s.diagnostics.max_speed() == pytest.approx(0.0)
