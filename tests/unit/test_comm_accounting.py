"""Unit: halo-exchange byte accounting (CommunicationReport).

Pins the per-step wire volume for ST vs MR on D3Q19 — the paper's
compression argument on the network: an MR face ships M = 10 moments per
node where naive ST ships Q = 19 populations (crossing-only ST ships 5) —
and locks the ``steps`` bookkeeping: every exchange round advances
``comm.steps`` whether driven through ``run()`` or direct ``step()``
calls.
"""

import pytest

from repro.parallel import CommunicationReport, distributed_periodic_problem

SHAPE_3D = (12, 6, 5)
FACE_NODES = 6 * 5
DOUBLE = 8
# Periodic, 2 ranks: each rank exchanges over both faces -> 4 directed
# messages per step.
MESSAGES_PER_STEP = 4


class TestStepsAdvance:
    def test_direct_step_calls_advance_steps(self):
        d = distributed_periodic_problem("MR-P", "D2Q9", (24, 10), 2, 0.8)
        d.step()
        d.step()
        assert d.comm.steps == 2
        assert d.comm.bytes_per_step() == d.comm.bytes_sent / 2

    def test_run_and_step_agree(self):
        via_run = distributed_periodic_problem("ST", "D2Q9", (24, 10), 2, 0.8)
        via_step = distributed_periodic_problem("ST", "D2Q9", (24, 10), 2, 0.8)
        via_run.run(3)
        for _ in range(3):
            via_step.step()
        assert via_run.comm == via_step.comm


class TestD3Q19BytesPerStep:
    @pytest.mark.parametrize("scheme,kwargs,payload", [
        ("ST", {}, 5),                             # crossing populations
        ("ST", {"st_exchange": "full"}, 19),       # naive full exchange
        ("MR-P", {}, 10),                          # compressed moments
        ("MR-R", {}, 10),                          # same wire format
    ])
    def test_pinned_bytes_per_step(self, scheme, kwargs, payload):
        d = distributed_periodic_problem(scheme, "D3Q19", SHAPE_3D, 2, 0.8,
                                         **kwargs)
        d.run(3)
        expected = MESSAGES_PER_STEP * payload * FACE_NODES * DOUBLE
        assert d.comm.bytes_per_step() == expected
        assert d.comm.messages == MESSAGES_PER_STEP * 3
        assert d.comm.steps == 3

    def test_mr_between_crossing_and_full_st(self):
        mr = distributed_periodic_problem("MR-P", "D3Q19", SHAPE_3D, 2, 0.8)
        st = distributed_periodic_problem("ST", "D3Q19", SHAPE_3D, 2, 0.8)
        full = distributed_periodic_problem("ST", "D3Q19", SHAPE_3D, 2, 0.8,
                                            st_exchange="full")
        for d in (mr, st, full):
            d.run(2)
        assert (st.comm.bytes_per_step()
                < mr.comm.bytes_per_step()
                < full.comm.bytes_per_step())


class TestReportArithmetic:
    def test_record_counts_doubles(self):
        rep = CommunicationReport()
        rep.record(100)
        rep.record(50)
        assert rep.bytes_sent == 150 * DOUBLE
        assert rep.messages == 2

    def test_bytes_per_step_guard_against_zero_steps(self):
        rep = CommunicationReport(bytes_sent=800)
        assert rep.bytes_per_step() == 800

    def test_merge_adds_volume_keeps_lockstep_steps(self):
        a = CommunicationReport(bytes_sent=100, messages=2, steps=5)
        b = CommunicationReport(bytes_sent=300, messages=4, steps=5)
        a.merge(b)
        assert a == CommunicationReport(bytes_sent=400, messages=6, steps=5)

    def test_to_dict_roundtrip(self):
        rep = CommunicationReport(bytes_sent=960, messages=4, steps=2)
        assert rep.to_dict() == {
            "bytes_sent": 960, "messages": 4, "steps": 2,
            "bytes_per_step": 480.0,
        }
