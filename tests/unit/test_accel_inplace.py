"""Parity and contract tests for the single-lattice ``"aa"`` backend.

The in-place streaming cores of :mod:`repro.accel.inplace` promise
machine-precision agreement with the two-lattice fused backend at every
even step (and, through the natural-layout canonicalization, for every
macroscopic evaluation at odd steps too), across the full feature
matrix: boundaries, solids, Guo forcing and the per-node variable-tau
collision. These tests pin that contract, the AA-layout checkpoint
canonicalization, and the configuration error paths.
"""

import numpy as np
import pytest

from repro.accel import available_backends, make_stepper
from repro.accel.inplace import (InplaceMRCore, InplaceSTCore, aa_to_natural,
                                 natural_to_aa)
from repro.boundary import HalfwayBounceBack
from repro.geometry import SOLID, Domain, lid_driven_cavity, periodic_box
from repro.io.checkpoint import restore_checkpoint, save_checkpoint
from repro.lattice import get_lattice
from repro.solver import (channel_problem, forced_channel_problem,
                          make_solver, periodic_problem)

SCHEMES = ("ST", "MR-P", "MR-R")
MACHINE_EPS = 1e-13


def run_pair(build, steps=8, against="fused"):
    """Run ``against`` and the aa backend from identical state; max diffs."""
    ref = build(against)
    fast = build("aa")
    ref.run(steps)
    fast.run(steps)
    rho_r, u_r = ref.macroscopic()
    rho_f, u_f = fast.macroscopic()
    return (float(np.abs(rho_r - rho_f).max()),
            float(np.abs(u_r - u_f).max()))


def random_periodic_builder(scheme, lattice_name, shape, tau=0.8,
                            forced=False, solids=False):
    lat = get_lattice(lattice_name)
    rng = np.random.default_rng(7)
    rho0 = 1 + 0.02 * rng.standard_normal(shape)
    u0 = 0.03 * rng.standard_normal((lat.d, *shape))
    nt = np.zeros(shape, dtype=np.int8)
    if solids:
        nt[tuple(slice(3, 6) for _ in shape)] = SOLID
    force = None
    if forced:
        force = 1e-5 * rng.standard_normal((lat.d, *shape))
    return lambda backend: make_solver(scheme, lat, Domain(nt), tau,
                                       rho0=rho0, u0=u0, force=force,
                                       backend=backend)


class TestInplaceParity:
    """aa == fused to machine precision on the full feature matrix."""

    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("lattice_name,shape", [
        ("D2Q9", (20, 14)),
        ("D3Q19", (8, 7, 6)),
    ])
    @pytest.mark.parametrize("steps", [7, 8])
    def test_periodic_even_and_odd(self, scheme, lattice_name, shape, steps):
        """Periodic boxes match at even *and* odd step counts."""
        drho, du = run_pair(
            random_periodic_builder(scheme, lattice_name, shape), steps=steps)
        assert drho < MACHINE_EPS
        assert du < MACHINE_EPS

    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("lattice_name,shape", [
        ("D2Q9", (14, 10)),
        ("D3Q19", (7, 6, 5)),
    ])
    def test_forced_periodic(self, scheme, lattice_name, shape):
        """The Guo source survives the scatter/local step split."""
        drho, du = run_pair(random_periodic_builder(
            scheme, lattice_name, shape, forced=True))
        assert drho < MACHINE_EPS
        assert du < MACHINE_EPS

    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("lattice_name,shape", [
        ("D2Q9", (14, 10)),
        ("D3Q19", (7, 6, 5)),
    ])
    def test_lean_solids(self, scheme, lattice_name, shape):
        """Solid pinning lands on the right (shifted) nodes in lean mode."""
        drho, du = run_pair(random_periodic_builder(
            scheme, lattice_name, shape, solids=True))
        assert drho < MACHINE_EPS
        assert du < MACHINE_EPS

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_poiseuille_channel_fallback(self, scheme):
        """Bounded problems take the conservative path, still exact."""
        drho, du = run_pair(
            lambda backend: channel_problem(scheme, "D2Q9", (24, 12),
                                            tau=0.8, u_max=0.04,
                                            backend=backend))
        assert drho < MACHINE_EPS
        assert du < MACHINE_EPS

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_forced_channel(self, scheme):
        """Body-forced bounce-back channels (fallback + Guo source)."""
        drho, du = run_pair(
            lambda backend: forced_channel_problem(
                scheme, "D2Q9", (20, 12), tau=0.7, u_max=0.03,
                backend=backend), steps=10)
        assert drho < MACHINE_EPS
        assert du < MACHINE_EPS

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_lid_driven_cavity(self, scheme):
        """Moving-wall cavity: solids + wall-velocity bounce-back."""
        lat = get_lattice("D2Q9")
        n = 10
        wall_u = np.zeros((2, n, n))
        wall_u[0, :, -1] = 0.05
        bcs = [HalfwayBounceBack(wall_velocity=wall_u)]
        drho, du = run_pair(
            lambda backend: make_solver(scheme, lat, lid_driven_cavity(n),
                                        0.8, boundaries=bcs,
                                        backend=backend), steps=12)
        assert drho < MACHINE_EPS
        assert du < MACHINE_EPS

    def test_variable_tau_power_law(self):
        """The per-node tau_field path reaches the aa MR core too."""
        from repro.solver import PowerLawMRPSolver

        lat = get_lattice("D2Q9")
        rng = np.random.default_rng(11)
        u0 = 0.04 * (rng.random((2, 14, 10)) - 0.5)

        def build(backend):
            return PowerLawMRPSolver(lat, periodic_box((14, 10)), 0.8, u0=u0,
                                     consistency=0.06, exponent=0.8,
                                     backend=backend)

        drho, du = run_pair(build)
        assert drho < MACHINE_EPS
        assert du < MACHINE_EPS

    def test_even_step_state_is_bit_exact(self):
        """Even-time lattice state equals fused bit for bit, not just eps."""
        build = random_periodic_builder("ST", "D2Q9", (16, 12))
        ref, fast = build("fused"), build("aa")
        ref.run(6)
        fast.run(6)
        assert np.array_equal(ref.f, fast.f)


class TestAALayout:
    """The component-shifted layout and its canonicalization helpers."""

    @pytest.mark.parametrize("lattice_name,shape", [
        ("D2Q9", (9, 7)),
        ("D3Q19", (6, 5, 4)),
    ])
    def test_layout_round_trip_is_bit_exact(self, lattice_name, shape):
        lat = get_lattice(lattice_name)
        rng = np.random.default_rng(0)
        f = rng.standard_normal((lat.q, *shape))
        assert np.array_equal(aa_to_natural(lat, natural_to_aa(lat, f)), f)
        assert np.array_equal(natural_to_aa(lat, aa_to_natural(lat, f)), f)

    def test_odd_time_state_is_shifted(self):
        """At odd lean times the persistent array is the AA layout."""
        build = random_periodic_builder("ST", "D2Q9", (12, 10))
        ref, fast = build("fused"), build("aa")
        ref.run(5)
        fast.run(5)
        assert fast._aa_layout_is_shifted()
        assert np.array_equal(aa_to_natural(fast.lat, fast.f), ref.f)

    def test_scatter_strategies_bit_identical(self):
        """Both scatter strategies realize the same exact permutation."""
        build = random_periodic_builder("ST", "D3Q19", (6, 5, 4),
                                        forced=True, solids=True)
        states = []
        for scat in ("fused", "copy"):
            s = build("aa")
            s._stepper = make_stepper(s)
            s._stepper.core = InplaceSTCore(
                s.lat, s.domain.shape, s.tau,
                solid_mask=s._stepper._solid, scatter=scat)
            s.run(5)
            states.append(s.f.copy())
        assert np.array_equal(states[0], states[1])

    def test_macroscopic_does_not_mutate_state(self):
        """Odd-parity macroscopic() converts a copy, not the live array."""
        s = random_periodic_builder("ST", "D2Q9", (10, 8))("aa")
        s.run(3)
        before = s.f.copy()
        s.macroscopic()
        assert np.array_equal(s.f, before)


class TestInplaceCheckpoint:
    """Checkpoints are written natural-layout at any parity."""

    @pytest.mark.parametrize("steps", [3, 5])
    def test_odd_step_round_trip_bit_exact(self, tmp_path, steps):
        build = random_periodic_builder("ST", "D2Q9", (12, 10))
        s = build("aa")
        s.run(steps)
        path = save_checkpoint(tmp_path / "ck.npz", s)
        fresh = build("aa")
        restore_checkpoint(path, fresh)
        assert fresh.time == steps
        assert np.array_equal(fresh.f, s.f)
        # and the continuation stays on the same bit-exact trajectory
        s.run(4)
        fresh.run(4)
        assert np.array_equal(fresh.f, s.f)

    def test_cross_backend_restore_at_odd_time(self, tmp_path):
        """An aa checkpoint taken at odd parity resumes under fused."""
        build = random_periodic_builder("ST", "D2Q9", (12, 10))
        s = build("aa")
        s.run(5)
        path = save_checkpoint(tmp_path / "ck.npz", s)
        other = build("fused")
        restore_checkpoint(path, other)
        other.run(3)
        s.run(3)
        assert np.array_equal(other.f, s.f)


class TestInplaceContracts:
    def test_aa_always_available(self):
        assert "aa" in available_backends()

    def test_state_values_per_node_halved_for_st(self):
        st_aa = periodic_problem("ST", "D2Q9", (8, 8), 0.8, backend="aa")
        st_fused = periodic_problem("ST", "D2Q9", (8, 8), 0.8,
                                    backend="fused")
        assert st_aa.state_values_per_node == st_aa.lat.q
        assert st_fused.state_values_per_node == 2 * st_fused.lat.q

    def test_mr_core_rejects_boundaries(self):
        lat = get_lattice("D2Q9")
        core = InplaceMRCore(lat, (8, 8), 0.8, scheme="MR-P")
        solver = periodic_problem("MR-P", "D2Q9", (8, 8), 0.8)
        with pytest.raises(ValueError, match="boundary"):
            core.step(solver.m, [HalfwayBounceBack()], None)

    def test_mr_core_guards_tau_field_to_mrp(self):
        lat = get_lattice("D2Q9")
        core = InplaceMRCore(lat, (8, 8), 0.8, scheme="MR-R")
        solver = periodic_problem("MR-R", "D2Q9", (8, 8), 0.8)
        with pytest.raises(ValueError, match="MR-P"):
            core.step(solver.m, [], None,
                      tau_field=np.full((8, 8), 0.8))

    def test_unknown_scatter_strategy_rejected(self):
        lat = get_lattice("D2Q9")
        with pytest.raises(ValueError, match="scatter"):
            InplaceSTCore(lat, (8, 8), 0.8, scatter="teleport")

    def test_st_non_bgk_rejected_like_fused(self):
        """aa shares the fused validation rules (ST is BGK-only)."""
        from repro.core.collision import TRTCollision
        from repro.solver import STSolver

        lat = get_lattice("D2Q9")
        with pytest.raises(ValueError, match="BGK"):
            STSolver(lat, periodic_box((8, 8)), 0.8,
                     collision=TRTCollision(0.8), backend="aa")
