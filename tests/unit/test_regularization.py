"""Unit tests for the regularization machinery (Eqs. 8-9, recursions)."""

import numpy as np
import pytest

from repro.core import (
    equilibrium,
    hermite_delta_higher_order,
    hermite_delta_second_order,
    macroscopic,
    pi_neq_cols_from_f,
    recursive_a3_neq_cols,
    recursive_a4_neq_cols,
    regularize_projective,
)


class TestPiNeq:
    def test_zero_for_equilibrium(self, lattice, random_state):
        rho, u, _ = random_state
        feq = equilibrium(lattice, rho, u)
        pi = pi_neq_cols_from_f(lattice, feq, rho, u)
        assert np.allclose(pi, 0, atol=1e-12)

    def test_matches_direct_projection(self, lattice, random_state):
        """Eq. 8: Pi_neq = sum H2 (f - f_eq)."""
        rho, u, f = random_state
        rho, u = macroscopic(lattice, f)
        feq = equilibrium(lattice, rho, u)
        direct = np.einsum("qt,q...->t...", lattice.h2_cols, f - feq)
        assert np.allclose(pi_neq_cols_from_f(lattice, f, rho, u), direct,
                           atol=1e-12)


class TestHermiteDeltas:
    def test_second_order_delta_has_zero_hydrodynamics(self, lattice, rng):
        """The regularized non-equilibrium part carries no mass/momentum."""
        grid = (4,) * lattice.d
        pi = rng.standard_normal((lattice.n_pairs, *grid))
        delta = hermite_delta_second_order(lattice, pi)
        assert np.allclose(delta.sum(axis=0), 0, atol=1e-13)
        mom = np.einsum("qa,q...->a...", lattice.c.astype(float), delta)
        assert np.allclose(mom, 0, atol=1e-13)

    def test_second_order_delta_reproduces_pi(self, lattice, rng):
        """sum H2 delta = Pi: the delta is the H2-inverse image."""
        grid = (3,) * lattice.d
        pi = rng.standard_normal((lattice.n_pairs, *grid))
        delta = hermite_delta_second_order(lattice, pi)
        got = np.einsum("qt,q...->t...", lattice.h2_cols, delta)
        assert np.allclose(got, pi, atol=1e-12)

    def test_higher_order_delta_preserves_first_three_moments(self, lattice, rng):
        """Eq. 14's extra terms are invisible to rho, j and Pi."""
        grid = (3,) * lattice.d
        a3 = rng.standard_normal((len(lattice.triple_tuples), *grid))
        a4 = rng.standard_normal((len(lattice.quad_tuples), *grid))
        delta = hermite_delta_higher_order(lattice, a3, a4)
        m = np.einsum("mq,q...->m...", lattice.moment_matrix, delta)
        assert np.allclose(m, 0, atol=1e-12)


class TestProjectiveRegularization:
    def test_idempotent(self, lattice, random_state):
        """Regularization is a projection: applying twice = applying once."""
        _, _, f = random_state
        f1 = regularize_projective(lattice, f)
        f2 = regularize_projective(lattice, f1)
        assert np.allclose(f1, f2, atol=1e-13)

    def test_preserves_tracked_moments(self, lattice, random_state):
        _, _, f = random_state
        from repro.core import moments_from_f

        f_reg = regularize_projective(lattice, f)
        assert np.allclose(
            moments_from_f(lattice, f_reg), moments_from_f(lattice, f),
            atol=1e-12,
        )


class TestRecursions:
    def test_a3_recursion_formula(self, lattice, rng):
        """a3_abc = u_a Pi_bc + u_b Pi_ac + u_c Pi_ab, component by component."""
        grid = (3,) * lattice.d
        u = rng.standard_normal((lattice.d, *grid))
        pi = rng.standard_normal((lattice.n_pairs, *grid))

        def pi_at(a, b):
            return pi[lattice.pair_index(a, b)]

        a3 = recursive_a3_neq_cols(lattice, u, pi)
        for k, (a, b, c) in enumerate(lattice.triple_tuples):
            expected = u[a] * pi_at(b, c) + u[b] * pi_at(a, c) + u[c] * pi_at(a, b)
            assert np.allclose(a3[k], expected)

    def test_a4_recursion_symmetric_pairs(self, lattice, rng):
        """a4 sums Pi over all six index-pair choices."""
        grid = (2,) * lattice.d
        u = rng.standard_normal((lattice.d, *grid))
        pi = rng.standard_normal((lattice.n_pairs, *grid))

        def pi_at(a, b):
            return pi[lattice.pair_index(a, b)]

        a4 = recursive_a4_neq_cols(lattice, u, pi)
        for k, (a, b, c, e) in enumerate(lattice.quad_tuples):
            expected = (
                u[a] * u[b] * pi_at(c, e) + u[a] * u[c] * pi_at(b, e)
                + u[a] * u[e] * pi_at(b, c) + u[b] * u[c] * pi_at(a, e)
                + u[b] * u[e] * pi_at(a, c) + u[c] * u[e] * pi_at(a, b)
            )
            assert np.allclose(a4[k], expected)

    def test_recursions_vanish_for_zero_pi(self, lattice, rng):
        grid = (2,) * lattice.d
        u = rng.standard_normal((lattice.d, *grid))
        zero = np.zeros((lattice.n_pairs, *grid))
        assert np.allclose(recursive_a3_neq_cols(lattice, u, zero), 0)
        assert np.allclose(recursive_a4_neq_cols(lattice, u, zero), 0)


class TestChapmanEnskogConsistency:
    """The recursion closed forms must match a direct Chapman-Enskog
    evaluation on a smooth manufactured field: at leading order,
    a3_neq ~ -tau cs2 rho (u_a S_bc + perms) with Pi_neq = -2 rho cs2 tau S.
    """

    @pytest.mark.parametrize("name", ["D2Q9", "D3Q19"])
    def test_a3_leading_order(self, name):
        from repro.lattice import get_lattice

        lat = get_lattice(name)
        rng = np.random.default_rng(7)
        u = 0.03 * rng.standard_normal(lat.d)
        grad = 1e-3 * rng.standard_normal((lat.d, lat.d))   # grad[a,b] = d_a u_b
        strain = 0.5 * (grad + grad.T)
        rho, tau = 1.0, 0.8
        pi_neq = np.stack(
            [-2.0 * rho * lat.cs2 * tau * strain[a, b]
             for a, b in lat.pair_tuples]
        )
        a3 = recursive_a3_neq_cols(lat, u.reshape(-1, 1), pi_neq.reshape(len(pi_neq), 1))
        # Direct CE form: -tau cs2 rho [u_a (d_b u_c + d_c u_b) + perms].
        for k, (a, b, c) in enumerate(lat.triple_tuples):
            expected = -2.0 * tau * lat.cs2 * rho * (
                u[a] * strain[b, c] + u[b] * strain[a, c] + u[c] * strain[a, b]
            )
            assert a3[k, 0] == pytest.approx(expected, rel=1e-12)
