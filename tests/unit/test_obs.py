"""Unit tests for the repro.obs observability layer."""

import json

import numpy as np
import pytest

from repro.obs import (
    NULL_TELEMETRY,
    JsonLinesExporter,
    RunManifest,
    StabilityError,
    StabilityWatchdog,
    Telemetry,
    load_manifest,
    manifest_path_for,
    read_jsonl,
    write_chrome_trace,
    write_csv_summary,
    write_manifest,
)
from repro.solver import channel_problem, periodic_problem
from repro.solver.monitors import ConvergenceMonitor, EnergyMonitor, ProbeMonitor


class TestPhaseTimers:
    def test_nesting_builds_hierarchical_paths(self):
        tel = Telemetry()
        with tel.phase("step"):
            with tel.phase("collide"):
                pass
            with tel.phase("stream"):
                pass
        with tel.phase("step"):
            with tel.phase("collide"):
                pass
        assert set(tel.phases) == {"step", "step/collide", "step/stream"}
        assert tel.phases["step"].calls == 2
        assert tel.phases["step/collide"].calls == 2
        assert tel.phases["step/stream"].calls == 1
        # Parent time includes child time.
        assert tel.phases["step"].total >= (
            tel.phases["step/collide"].total + tel.phases["step/stream"].total
        ) * 0.99

    def test_span_depths(self):
        tel = Telemetry()
        with tel.phase("a"):
            with tel.phase("b"):
                pass
        depths = {s.name: s.depth for s in tel.spans}
        assert depths == {"a": 0, "a/b": 1}

    def test_injectable_clock(self):
        t = [0.0]

        def clock():
            t[0] += 1.0
            return t[0]

        tel = Telemetry(clock=clock)
        with tel.phase("x"):
            pass
        assert tel.phases["x"].total == pytest.approx(1.0)

    def test_span_cap_counts_drops(self):
        tel = Telemetry(max_spans=2)
        for _ in range(4):
            with tel.phase("p"):
                pass
        assert len(tel.spans) == 2
        assert tel.counters["telemetry.spans_dropped"] == 2
        assert tel.phases["p"].calls == 4   # aggregation is never dropped

    def test_counters_gauges_and_derived(self):
        tel = Telemetry(clock=iter(np.arange(0.0, 100.0, 0.5)).__next__)
        with tel.phase("step"):
            pass
        tel.count("steps", 10)
        tel.gauge("g", 3.0)
        assert tel.counters["steps"] == 10
        assert tel.gauges["g"] == 3.0
        # 10 steps x 1000 nodes in 0.5 s -> 0.02 MLUPS
        assert tel.mlups(1000) == pytest.approx(1000 * 10 / 0.5 / 1e6)
        assert tel.mlups(1000, phase="missing") == 0.0

    def test_summary_is_json_serializable(self):
        tel = Telemetry()
        with tel.phase("step"):
            pass
        tel.count("c")
        tel.gauge("g", 1.5)
        json.dumps(tel.summary())


class TestNullTelemetry:
    def test_phase_is_shared_singleton(self):
        assert NULL_TELEMETRY.phase("a") is NULL_TELEMETRY.phase("b")
        with NULL_TELEMETRY.phase("a"):
            pass

    def test_disabled_flag_and_noop_hooks(self):
        assert NULL_TELEMETRY.enabled is False
        NULL_TELEMETRY.count("x", 5)
        NULL_TELEMETRY.gauge("y", 1.0)
        NULL_TELEMETRY.add_span("z", 0.0, 1.0)

    def test_no_per_step_allocations_from_obs(self):
        """The disabled path must not allocate per step."""
        import tracemalloc

        s = periodic_problem("MR-P", "D2Q9", (16, 16), 0.8)
        s.run(2)                                   # warm caches
        tracemalloc.start()
        base = tracemalloc.take_snapshot()
        s.run(5)
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        growth = [
            st for st in after.compare_to(base, "filename")
            if "repro/obs" in st.traceback[0].filename.replace("\\", "/")
            and st.size_diff > 0
        ]
        assert not growth, [str(g) for g in growth]


class TestSolverIntegration:
    def test_run_records_scheme_phases(self):
        for scheme, expected in [
            ("ST", {"step", "step/stream", "step/boundary", "step/collide"}),
            ("MR-P", {"step", "step/collide", "step/stream",
                      "step/boundary", "step/macroscopic"}),
        ]:
            tel = Telemetry()
            s = channel_problem(scheme, "D2Q9", (16, 10)).attach_telemetry(tel)
            s.run(3)
            assert expected <= set(tel.phases), scheme
            assert tel.counters["steps"] == 3
            assert tel.phases["step"].calls == 3

    def test_aa_solver_phases(self):
        from repro.geometry.domain import periodic_box
        from repro.lattice import get_lattice
        from repro.solver.aa import AASolver

        tel = Telemetry()
        s = AASolver(get_lattice("D2Q9"), periodic_box((8, 8)), 0.8)
        s.attach_telemetry(tel)
        s.run(4)
        # Odd steps time their two memory passes as distinct sub-phases
        # (a single "stream" phase entered twice would double-count).
        assert {"step", "step/collide", "step/stream:gather",
                "step/stream:scatter"} <= set(tel.phases)
        assert "step/stream" not in tel.phases

    def test_telemetry_does_not_change_results(self):
        a = channel_problem("MR-R", "D2Q9", (20, 12))
        b = channel_problem("MR-R", "D2Q9", (20, 12)).attach_telemetry(Telemetry())
        a.run(20)
        b.run(20)
        np.testing.assert_array_equal(a.m, b.m)

    def test_attach_none_restores_null(self):
        s = periodic_problem("ST", "D2Q9", (8, 8), 0.8)
        s.attach_telemetry(Telemetry())
        s.attach_telemetry(None)
        assert s.telemetry is NULL_TELEMETRY

    def test_run_to_steady_state_forwards_callback(self):
        s = channel_problem("ST", "D2Q9", (16, 10))
        em = EnergyMonitor(every=5)
        s.run_to_steady_state(tol=1e-3, check_interval=10, max_steps=2000,
                              callback=em, callback_interval=1)
        assert len(em.values) >= 2       # monitors observed the run
        assert em.times == [t for t in em.times if t % 5 == 0]


class TestMonitorFixes:
    def test_probe_series_is_dense_stack(self):
        s = periodic_problem("ST", "D2Q9", (8, 8), 0.8)
        pm = ProbeMonitor((4, 4), every=3)
        s.run(10, callback=pm)
        times, values = pm.series()
        assert values.dtype == np.float64
        assert values.shape == (len(times), 2)

    def test_empty_series(self):
        pm = ProbeMonitor((0, 0), every=1000)
        times, values = pm.series()
        assert times.size == 0 and values.size == 0

    def test_convergence_monitor_skips_sentinel(self):
        s = periodic_problem("ST", "D2Q9", (8, 8), 0.8)
        cm = ConvergenceMonitor(every=5)
        s.run(20, callback=cm)
        assert cm.times == [10, 15, 20]
        _, values = cm.series()
        assert np.isfinite(values).all()


class TestExporters:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        with JsonLinesExporter(path) as ex:
            ex.write({"step": 1, "mlups": 2.5})
            ex.write({"step": 2, "mlups": 2.75})
        records = read_jsonl(path)
        assert records == [{"step": 1, "mlups": 2.5}, {"step": 2, "mlups": 2.75}]

    def test_csv_summary(self, tmp_path):
        tel = Telemetry()
        with tel.phase("step"):
            pass
        tel.count("steps", 3)
        tel.gauge("gbs", 1.25)
        text = write_csv_summary(tel, tmp_path / "summary.csv").read_text()
        lines = text.strip().splitlines()
        assert lines[0].startswith("kind,name")
        kinds = {ln.split(",")[0] for ln in lines[1:]}
        assert kinds == {"phase", "counter", "gauge"}

    def test_chrome_trace_round_trip(self, tmp_path):
        tel = Telemetry()
        with tel.phase("step"):
            with tel.phase("collide"):
                pass
        path = write_chrome_trace(tel, tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == 2
        for ev in doc["traceEvents"]:
            assert ev["ph"] == "X"
            assert ev["ts"] >= 0 and ev["dur"] >= 0
        names = {ev["args"]["path"] for ev in doc["traceEvents"]}
        assert names == {"step", "step/collide"}


class TestManifest:
    def test_round_trip(self, tmp_path):
        s = periodic_problem("MR-P", "D2Q9", (8, 8), 0.8)
        s.run(3)
        path = write_manifest(tmp_path / "m.json", s, seed=42, note="hi")
        m = load_manifest(path)
        assert m.scheme == "MR-P" and m.lattice == "D2Q9"
        assert m.shape == (8, 8) and m.tau == 0.8
        assert m.seed == 42 and m.steps == 3
        assert m.extra["note"] == "hi"
        assert m.version and m.platform["python"]

    def test_manifest_path_for(self):
        assert manifest_path_for("out/flow.npz").name == "flow.manifest.json"

    def test_from_solver_is_dataclass(self):
        s = periodic_problem("ST", "D2Q9", (8, 8), 0.8)
        m = RunManifest.from_solver(s)
        assert m.scheme == "ST"
        json.dumps(m.to_dict())

    def test_checkpoint_writes_manifest(self, tmp_path):
        from repro.io import save_checkpoint

        s = periodic_problem("ST", "D2Q9", (8, 8), 0.8)
        ck = tmp_path / "state.npz"
        save_checkpoint(ck, s, manifest=True, seed=7)
        m = load_manifest(tmp_path / "state.manifest.json")
        assert m.scheme == "ST" and m.seed == 7
        assert m.extra["kind"] == "checkpoint"


class TestWatchdog:
    def test_healthy_run_passes(self):
        s = channel_problem("MR-P", "D2Q9", (16, 10))
        wd = StabilityWatchdog(every=5)
        s.run(10, callback=wd)
        assert wd.last_report is not None
        assert wd.last_report["nonfinite_u"] == 0

    def test_triggers_on_induced_nan(self):
        s = periodic_problem("ST", "D2Q9", (8, 8), 0.8)
        s.f[0, 3, 3] = np.nan
        wd = StabilityWatchdog(every=1)
        with pytest.raises(StabilityError) as exc:
            s.run(1, callback=wd)
        report = exc.value.report
        assert report["nonfinite_rho"] >= 1 or report["nonfinite_u"] >= 1
        assert report["scheme"] == "ST" and report["step"] == 1
        json.dumps(report)               # structured, machine-readable

    def test_triggers_on_superluminal_speed(self):
        s = periodic_problem("MR-P", "D2Q9", (8, 8), 0.8)
        s.m[1, :, :] = 2.0               # momentum far above c_s
        wd = StabilityWatchdog(every=1)
        with pytest.raises(StabilityError) as exc:
            wd.check(s)
        assert exc.value.report["supersonic"] > 0

    def test_telemetry_gauges(self):
        tel = Telemetry()
        s = periodic_problem("ST", "D2Q9", (8, 8), 0.8)
        wd = StabilityWatchdog(every=1, telemetry=tel)
        wd.check(s)
        assert tel.counters["watchdog.checks"] == 1
        assert "watchdog.max_speed" in tel.gauges

    def test_invalid_cadence(self):
        with pytest.raises(ValueError):
            StabilityWatchdog(every=0)
