"""The shared problem registry: one kind table for CLI/runtime/sweep/server."""

import numpy as np
import pytest

from repro.service.registry import (
    ProblemKind,
    build_distributed,
    build_single,
    get_problem,
    problem_kinds,
    register_problem,
    sweep_kinds,
)


class TestRegistryContents:
    """The default kind table."""

    def test_default_kinds_registered(self):
        kinds = problem_kinds()
        for name in ("channel", "forced-channel", "periodic",
                     "taylor-green", "cylinder", "porous"):
            assert name in kinds

    def test_kinds_sorted(self):
        assert list(problem_kinds()) == sorted(problem_kinds())

    def test_sweep_kinds_subset(self):
        assert list(sweep_kinds()) == ["channel", "forced-channel",
                                       "taylor-green"]
        assert set(sweep_kinds()) <= set(problem_kinds())

    def test_unknown_kind_message_lists_registered(self):
        with pytest.raises(ValueError, match="unknown problem kind"):
            get_problem("no-such-problem")

    def test_descriptions_present(self):
        for name in problem_kinds():
            assert get_problem(name).description

    def test_custom_registration(self):
        kind = ProblemKind(name="test-custom", description="a test kind",
                           distributed=None, single=None)
        register_problem(kind)
        try:
            assert get_problem("test-custom") is kind
            assert "test-custom" in problem_kinds()
            assert "test-custom" not in sweep_kinds()
        finally:
            from repro.service import registry

            registry._REGISTRY.pop("test-custom", None)


class TestRunSpecValidation:
    """RunSpec construction validates its kind against the registry."""

    def test_unknown_kind_rejected_at_construction(self):
        from repro.parallel import RunSpec

        with pytest.raises(ValueError, match="unknown problem kind"):
            RunSpec("no-such-problem", "MR-P", "D2Q9", (16, 16), 2)

    def test_known_kind_accepted(self):
        from repro.parallel import RunSpec

        spec = RunSpec("cylinder", "ST", "D2Q9", (32, 16), 2)
        assert spec.kind == "cylinder"


class TestBuilders:
    """Single-domain and distributed builders produce runnable solvers."""

    def test_build_single_every_kind(self):
        for name, options in [("channel", {"u_max": 0.03}),
                              ("forced-channel", {"u_max": 0.03}),
                              ("taylor-green", {"u_max": 0.03}),
                              ("cylinder", {"u_max": 0.03}),
                              ("porous", {})]:
            solver = build_single(name, "MR-P", "D2Q9", (24, 14),
                                  tau=0.8, **options)
            solver.run(5)
            rho, u = solver.macroscopic()
            assert np.all(np.isfinite(rho)) and np.all(np.isfinite(u))

    def test_build_distributed_every_kind(self):
        for name, options in [("forced-channel", {"u_max": 0.03}),
                              ("taylor-green", {"u_max": 0.03}),
                              ("cylinder", {"u_max": 0.03}),
                              ("porous", {})]:
            solver = build_distributed(name, "ST", "D2Q9", (24, 14), 2,
                                       tau=0.8, **options)
            solver.run(5)
            rho, u = solver.gather_macroscopic()
            assert np.all(np.isfinite(rho)) and np.all(np.isfinite(u))

    def test_taylor_green_needs_2d(self):
        with pytest.raises(ValueError, match="2D"):
            build_single("taylor-green", "MR-P", "D3Q19", (8, 8, 8))

    def test_cylinder_masks_solid_nodes(self):
        solver = build_single("cylinder", "ST", "D2Q9", (48, 24))
        full = 48 * 24 - 2 * 48          # channel minus the two walls
        assert solver.domain.n_fluid < full

    def test_distributed_matches_single_domain(self):
        """The registry's distributed build reproduces the single build."""
        single = build_single("forced-channel", "MR-P", "D2Q9", (24, 14),
                              tau=0.8, u_max=0.03)
        dist = build_distributed("forced-channel", "MR-P", "D2Q9",
                                 (24, 14), 2, tau=0.8, u_max=0.03)
        single.run(20)
        dist.run(20)
        rho_s, u_s = single.macroscopic()
        rho_d, u_d = dist.gather_macroscopic()
        np.testing.assert_allclose(rho_d, rho_s, rtol=0, atol=1e-12)
        np.testing.assert_allclose(u_d, u_s, rtol=0, atol=1e-12)
