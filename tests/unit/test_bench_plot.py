"""Unit tests for the bench rendering helpers (tables, CSV, SVG)."""

import numpy as np
import pytest

from repro.bench import figure_to_csv, figure_to_svg, render_table
from repro.bench.figures import FigureSeries
from repro.bench.plot import _ticks


@pytest.fixture
def panels():
    p1 = FigureSeries(device="V100", lattice="D2Q9")
    p1.sizes = [1_000_000, 4_000_000, 16_000_000]
    p1.series = {"ST": [4000.0, 5000.0, 5300.0],
                 "MR-P": [3000.0, 6000.0, 7000.0],
                 "MR-R": [3000.0, 6000.0, 6990.0]}
    p1.rooflines = {"ST": 6250.0, "MR": 9375.0}
    p2 = FigureSeries(device="MI100", lattice="D2Q9")
    p2.sizes = p1.sizes
    p2.series = {k: [v * 1.2 for v in vals] for k, vals in p1.series.items()}
    p2.rooflines = {"ST": 8533.0, "MR": 12800.0}
    return [p1, p2]


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(["a", "bb"], [[1, "xyz"], [22, "q"]], "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "22" in lines[4]

    def test_no_title(self):
        text = render_table(["x"], [[1]])
        assert not text.startswith("\n")
        assert text.splitlines()[0].strip() == "x"


class TestCSV:
    def test_structure(self, panels):
        csv = figure_to_csv(panels)
        blocks = csv.strip().split("\n\n")
        assert len(blocks) == 2
        lines = blocks[0].splitlines()
        assert lines[0].startswith("# D2Q9 on V100")
        assert lines[1] == "nodes,MR-P,MR-R,ST"
        assert len(lines) == 2 + 3                # header rows + 3 sizes
        first = lines[2].split(",")
        assert first[0] == "1000000"
        assert float(first[3]) == 4000.0          # ST column (sorted order)

    def test_round_trip_values(self, panels):
        csv = figure_to_csv(panels)
        row = csv.splitlines()[2].split(",")
        assert float(row[1]) == pytest.approx(3000.0)   # MR-P


class TestSVG:
    def test_valid_structure(self, panels):
        svg = figure_to_svg(panels, title="Fig")
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert svg.count("<polyline") == 6         # 3 series x 2 panels
        assert "Fig" in svg
        assert "roofline" in svg
        assert "MI100" in svg and "V100" in svg

    def test_points_within_canvas(self, panels):
        svg = figure_to_svg(panels)
        import re

        for m in re.finditer(r'<circle cx="([\d.]+)" cy="([\d.]+)"', svg):
            x, y = float(m.group(1)), float(m.group(2))
            assert 0 <= x <= 920
            assert 0 <= y <= 360

    def test_single_panel(self, panels):
        svg = figure_to_svg(panels[:1])
        assert 'width="460"' in svg


class TestTicks:
    def test_cover_range(self):
        ticks = _ticks(0, 9375)
        assert ticks[0] <= 0.01
        assert ticks[-1] <= 9375
        assert len(ticks) >= 3
        steps = np.diff(ticks)
        assert np.allclose(steps, steps[0])

    def test_degenerate_range(self):
        ticks = _ticks(5, 5)
        assert len(ticks) >= 1
