"""Unit tests for the traffic-measurement harness and its disk cache."""

import json

import pytest

from repro.bench.measure import (
    TrafficMeasurement,
    measure_channel_traffic,
    measurement_shape,
)


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    """Point the measurement cache at a fresh directory and clear the
    in-process memo."""
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
    measure_channel_traffic.cache_clear()
    yield tmp_path
    measure_channel_traffic.cache_clear()


TINY_2D = (24, 10)


class TestMeasurement:
    def test_default_shapes(self):
        assert len(measurement_shape(2)) == 2
        assert len(measurement_shape(3)) == 3

    def test_tiny_measurement_st(self, isolated_cache):
        m = measure_channel_traffic("ST", "D2Q9", "V100", shape=TINY_2D,
                                    tile_cross=(8,))
        assert isinstance(m, TrafficMeasurement)
        assert m.n_nodes == 240
        # Small grid: wall fraction inflates/deflates, but stay in range.
        assert 100 < m.dram_bytes_per_node < 160
        assert m.logical_bytes_per_node > 0

    def test_tiny_measurement_mr(self, isolated_cache):
        m = measure_channel_traffic("MR-P", "D2Q9", "V100", shape=TINY_2D,
                                    tile_cross=(8,))
        assert m.scheme == "MR-P"
        assert 80 <= m.dram_bytes_per_node <= 110

    def test_disk_cache_roundtrip(self, isolated_cache):
        m1 = measure_channel_traffic("ST", "D2Q9", "V100", shape=TINY_2D)
        cache_file = isolated_cache / "repro-lbm" / "traffic-cache.json"
        assert cache_file.exists()
        payload = json.loads(cache_file.read_text())
        assert len(payload) == 1

        # A fresh process would hit the disk cache: simulate by clearing
        # the lru memo and checking we get identical numbers back.
        measure_channel_traffic.cache_clear()
        m2 = measure_channel_traffic("ST", "D2Q9", "V100", shape=TINY_2D)
        assert m2 == m1

    def test_distinct_keys(self, isolated_cache):
        measure_channel_traffic("ST", "D2Q9", "V100", shape=TINY_2D)
        measure_channel_traffic("ST", "D2Q9", "MI100", shape=TINY_2D)
        cache_file = isolated_cache / "repro-lbm" / "traffic-cache.json"
        assert len(json.loads(cache_file.read_text())) == 2

    def test_corrupt_cache_is_ignored(self, isolated_cache):
        cache_file = isolated_cache / "repro-lbm" / "traffic-cache.json"
        cache_file.parent.mkdir(parents=True)
        cache_file.write_text("{not json")
        m = measure_channel_traffic("ST", "D2Q9", "V100", shape=TINY_2D)
        assert m.n_nodes == 240
        # And the cache heals itself.
        assert json.loads(cache_file.read_text())

    def test_determinism(self, isolated_cache):
        a = measure_channel_traffic("MR-R", "D2Q9", "V100", shape=TINY_2D,
                                    tile_cross=(8,))
        measure_channel_traffic.cache_clear()
        (isolated_cache / "repro-lbm" / "traffic-cache.json").unlink()
        b = measure_channel_traffic("MR-R", "D2Q9", "V100", shape=TINY_2D,
                                    tile_cross=(8,))
        assert a.dram_bytes_per_node == b.dram_bytes_per_node
