"""Unit tests for momentum-exchange forces and run-time monitors."""

import numpy as np
import pytest

from repro.analysis import MomentumExchangeForce, drag_lift_coefficients
from repro.boundary import HalfwayBounceBack
from repro.geometry import channel_2d, lid_driven_cavity, periodic_box
from repro.lattice import get_lattice
from repro.solver import (
    ConvergenceMonitor,
    EnergyMonitor,
    EnstrophyMonitor,
    ForceMonitor,
    Monitors,
    ProbeMonitor,
    forced_channel_problem,
    make_solver,
    periodic_problem,
)
from repro.validation import taylor_green_fields


@pytest.fixture
def d2q9():
    return get_lattice("D2Q9")


class TestMomentumExchange:
    def test_quiescent_fluid_zero_force(self, d2q9):
        s = make_solver("ST", d2q9, lid_driven_cavity(10), 0.8,
                        boundaries=[HalfwayBounceBack()])
        s.run(5)
        force = MomentumExchangeForce(s).force()
        assert np.allclose(force, 0.0, atol=1e-14)

    @pytest.mark.parametrize("scheme", ["ST", "MR-P", "MR-R"])
    def test_channel_walls_balance_body_force(self, scheme):
        """At steady state the wall drag balances the driving force."""
        s = forced_channel_problem(scheme, "D2Q9", (12, 18), tau=0.9,
                                   u_max=0.03)
        s.run_to_steady_state(tol=1e-11, check_interval=200, max_steps=60_000)
        wall_force = MomentumExchangeForce(s).force()
        driving = s.force[0].sum()          # total force on the fluid
        assert wall_force[0] == pytest.approx(driving, rel=1e-3)
        assert abs(wall_force[1]) < 1e-10

    def test_masks_validated(self, d2q9):
        dom = channel_2d(8, 6, with_io=False)
        s = make_solver("ST", d2q9, dom, 0.8,
                        boundaries=[HalfwayBounceBack()])
        with pytest.raises(ValueError, match="shape"):
            MomentumExchangeForce(s, body_mask=np.ones((3, 3), bool))
        fluid_mask = ~dom.solid_mask
        with pytest.raises(ValueError, match="solid"):
            MomentumExchangeForce(s, body_mask=fluid_mask)

    def test_no_boundary_links(self, d2q9):
        s = make_solver("ST", d2q9, periodic_box((6, 6)), 0.8)
        with pytest.raises(ValueError, match="links"):
            MomentumExchangeForce(s)

    def test_coefficients(self):
        cd, cl = drag_lift_coefficients(np.array([0.02, -0.01]), 1.0, 0.1, 10)
        assert cd == pytest.approx(0.02 / (0.5 * 0.01 * 10))
        assert cl == pytest.approx(-0.01 / (0.5 * 0.01 * 10))
        with pytest.raises(ValueError):
            drag_lift_coefficients(np.zeros(2), 1.0, 0.0, 1.0)


class TestMonitors:
    def _tg_solver(self, steps=0):
        shape, tau = (24, 24), 0.8
        rho0, u0 = taylor_green_fields(shape, 0.0, 0.1, 0.03)
        return periodic_problem("MR-P", "D2Q9", shape, tau, rho0=rho0, u0=u0)

    def test_sampling_cadence(self):
        s = self._tg_solver()
        em = EnergyMonitor(every=5)
        s.run(20, callback=em)
        assert em.times == [5, 10, 15, 20]

    def test_energy_decays(self):
        s = self._tg_solver()
        em = EnergyMonitor(every=10)
        s.run(50, callback=em)
        vals = em.series()[1]
        assert (np.diff(vals) < 0).all()

    def test_enstrophy_decays(self):
        s = self._tg_solver()
        en = EnstrophyMonitor(every=10)
        s.run(50, callback=en)
        assert en.values[-1] < en.values[0]

    def test_probe(self):
        s = self._tg_solver()
        pm = ProbeMonitor((6, 12), every=10)
        s.run(20, callback=pm)
        assert len(pm.values) == 2
        assert pm.values[0].shape == (2,)
        _, u = s.macroscopic()
        assert np.allclose(pm.values[-1], u[:, 6, 12])

    def test_composition(self):
        s = self._tg_solver()
        em = EnergyMonitor(every=10)
        pm = ProbeMonitor((3, 3), every=20)
        s.run(40, callback=Monitors(em, pm))
        assert len(em.values) == 4
        assert len(pm.values) == 2

    def test_convergence_monitor(self):
        s = periodic_problem("ST", "D2Q9", (8, 8), 0.8)   # rest fluid
        cm = ConvergenceMonitor(every=5)
        s.run(15, callback=cm)
        # The first visit (t=5) only records the baseline; no inf sentinel.
        assert cm.times == [10, 15]
        assert np.isfinite(cm.series()[1]).all()
        assert cm.values[-1] == pytest.approx(0.0, abs=1e-15)
        assert cm.converged

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            EnergyMonitor(every=0)

    def test_force_monitor_runs(self, d2q9):
        n = 10
        wall_u = np.zeros((2, n, n))
        wall_u[0, :, -1] = 0.05
        s = make_solver("ST", d2q9, lid_driven_cavity(n), 0.8,
                        boundaries=[HalfwayBounceBack(wall_velocity=wall_u)])
        fm = ForceMonitor(s, every=5)
        s.run(20, callback=fm)
        assert len(fm.values) == 4
        # The moving lid drags the fluid +x; reaction force on the walls
        # is the fluid's momentum sink — nonzero once flow develops.
        assert np.abs(fm.values[-1]).max() > 0


class TestEndOfRunFlush:
    """Runs whose length is not a multiple of ``every`` keep the end state."""

    def _tg_solver(self):
        shape, tau = (16, 16), 0.8
        rho0, u0 = taylor_green_fields(shape, 0.0, 0.1, 0.03)
        return periodic_problem("MR-P", "D2Q9", shape, tau, rho0=rho0, u0=u0)

    def test_final_state_recorded_off_cadence(self):
        s = self._tg_solver()
        em = EnergyMonitor(every=5)
        s.run(13, callback=em)           # 13 % 5 != 0: previously dropped
        assert em.times == [5, 10, 13]

    def test_no_duplicate_when_on_cadence(self):
        s = self._tg_solver()
        em = EnergyMonitor(every=5)
        s.run(10, callback=em)
        assert em.times == [5, 10]

    def test_flush_through_composition(self):
        s = self._tg_solver()
        em = EnergyMonitor(every=4)
        pm = ProbeMonitor((3, 3), every=10)
        s.run(7, callback=Monitors(em, pm))
        assert em.times == [4, 7]
        assert pm.times == [7]
        _, u = s.macroscopic()
        assert np.allclose(pm.values[-1], u[:, 3, 3])

    def test_convergence_monitor_flush_no_inf(self):
        s = periodic_problem("ST", "D2Q9", (8, 8), 0.8)   # rest fluid
        cm = ConvergenceMonitor(every=5)
        s.run(13, callback=cm)
        assert cm.times == [10, 13]
        assert np.isfinite(cm.series()[1]).all()
        assert cm.converged

    def test_convergence_flush_before_baseline(self):
        """Flush with no baseline yet must not record an inf sample."""
        s = periodic_problem("ST", "D2Q9", (8, 8), 0.8)
        cm = ConvergenceMonitor(every=50)
        s.run(3, callback=cm)            # never reaches the cadence
        assert cm.times == []
        assert cm.values == []

    def test_plain_callable_callbacks_still_work(self):
        """run() must not require callbacks to implement flush()."""
        s = self._tg_solver()
        seen = []
        s.run(3, callback=lambda solver: seen.append(solver.time))
        assert seen == [1, 2, 3]
