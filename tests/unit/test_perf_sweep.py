"""Unit tests for the tile-configuration auto-tuner."""

import pytest

from repro.gpu import MI100, V100
from repro.lattice import get_lattice
from repro.perf import best_tile, enumerate_tiles, sweep_tiles


@pytest.fixture
def d3q19():
    return get_lattice("D3Q19")


@pytest.fixture
def d3q27():
    return get_lattice("D3Q27")


class TestEnumeration:
    def test_legal_configs_only(self, d3q19):
        shape = (64, 64, 64)
        configs = enumerate_tiles(d3q19, shape, V100)
        assert configs
        for tile, w_t in configs:
            for extent, t in zip(shape[:-1], tile):
                assert extent % t == 0
            assert shape[-1] % w_t == 0

    def test_respects_shared_memory_limit(self, d3q27):
        """Tiles whose ring exceeds the MI100's 64 KB LDS are excluded."""
        shape = (64, 64, 64)
        mi = {t for t, _ in enumerate_tiles(d3q27, shape, MI100)}
        v = {t for t, _ in enumerate_tiles(d3q27, shape, V100)}
        assert (16, 8) in v            # 16*8*3*27*8 = 83 KB fits... on V100
        assert (16, 8) not in mi

    def test_2d_enumeration(self):
        d2 = get_lattice("D2Q9")
        configs = enumerate_tiles(d2, (256, 256), V100)
        assert all(len(t) == 1 for t, _ in configs)
        assert ((16,), 8) in configs


class TestSweep:
    def test_ranking_is_sorted(self, d3q19):
        ranking = sweep_tiles(d3q19, (128, 128, 128), V100)
        vals = [c.mflups for c in ranking]
        assert vals == sorted(vals, reverse=True)

    def test_best_meets_two_block_rule_when_possible(self, d3q19):
        best = best_tile(d3q19, (128, 128, 128), V100)
        assert best.prediction.occupancy.meets_two_block_rule

    def test_mi100_q27_retuning(self, d3q27):
        """The tuner must avoid the MI100 occupancy cliff automatically."""
        shape = (256, 256, 256)
        best_v = best_tile(d3q27, shape, V100)
        best_a = best_tile(d3q27, shape, MI100)
        # On the MI100 the tuner must pick a tile small enough for >= 2
        # blocks per CU, unlike the V100-optimal one.
        ring_v = (best_v.tile_cross[0] * best_v.tile_cross[1]
                  * (best_v.w_t + 2) * 27 * 8)
        ring_a = (best_a.tile_cross[0] * best_a.tile_cross[1]
                  * (best_a.w_t + 2) * 27 * 8)
        assert ring_a <= MI100.shared_mem_per_sm_bytes // 2
        assert best_a.prediction.occupancy.meets_two_block_rule
        # And the tuned MI100 config beats the naive V100-optimal one there.
        from repro.perf import PerformanceModel

        naive = PerformanceModel(MI100).predict_shape(
            d3q27, "MR-P", shape, tile_cross=(8, 8), w_t=1
        )
        if naive.occupancy.blocks_per_sm < 2:
            assert best_a.mflups > naive.mflups

    def test_halo_pessimistic_mode_prefers_wider_tiles(self, d3q19):
        """Charging raw halo traffic rewards wide tiles (smaller halo)."""
        shape = (128, 128, 128)
        with_halo = sweep_tiles(d3q19, shape, V100, halo_traffic=True)
        top = with_halo[0]
        assert top.tile_cross[0] * top.tile_cross[1] >= 64

    def test_no_legal_config_raises(self, d3q27):
        # A 5^3 domain has no tile >= 2 dividing it except 5 itself... use
        # a prime extent so only the full extent divides, and an absurd
        # lattice/shared combination cannot even fit: force failure via
        # w_t options that do not divide.
        with pytest.raises(ValueError, match="no legal"):
            best_tile(d3q27, (7, 7, 7), MI100, w_t_options=(4,))


class TestPrimeExtentFallback:
    """Regression: prime cross extents above the divisor cap must still
    enumerate (via extent-1 / full-extent fallback tiles) instead of
    silently yielding an empty candidate list."""

    def test_prime_extent_2d(self):
        d2 = get_lattice("D2Q9")
        configs = enumerate_tiles(d2, (67, 64), V100)
        assert configs, "prime cross extent 67 must not empty the sweep"
        tiles = {t for t, _ in configs}
        assert (1,) in tiles               # extent-1 fallback is legal
        for tile, w_t in configs:
            assert 67 % tile[0] == 0
            assert 64 % w_t == 0

    def test_prime_extent_3d(self, d3q19):
        configs = enumerate_tiles(d3q19, (67, 67, 64), V100)
        assert configs
        assert {(1, 1)} <= {t for t, _ in configs}

    def test_prime_extent_best_tile_succeeds(self, d3q19):
        best = best_tile(d3q19, (67, 67, 64), V100)
        assert 67 % best.tile_cross[0] == 0
        assert best.mflups > 0

    def test_composite_domains_keep_divisor_candidates(self, d3q19):
        """The fallback must not disturb ordinary divisor enumeration."""
        tiles = {t for t, _ in enumerate_tiles(d3q19, (64, 64, 64), V100)}
        assert (8, 8) in tiles
        assert (1, 1) not in tiles         # fallback only when needed

    def test_empty_ranking_raises_clear_error(self, d3q27):
        """best_tile names lattice, device and domain when nothing fits."""
        with pytest.raises(ValueError, match=r"no legal tile.*D3Q27.*MI100"):
            best_tile(d3q27, (7, 7, 7), MI100, w_t_options=(4,))
