"""Unit test for the ``mrlbm validate`` physics smoke command."""

from repro.cli import main


def test_validate_fast_passes(capsys):
    rc = main(["validate", "--fast"])
    out = capsys.readouterr().out
    assert rc == 0
    assert out.count("PASS") == 6          # 3 schemes x 2 flows
    assert "FAIL" not in out
    assert "all validations passed" in out
