"""Unit tests for lattice descriptors and their derived machinery."""

import numpy as np
import pytest

from repro.lattice import build_descriptor, get_lattice
from repro.lattice.descriptor import _supported_columns


class TestBasicProperties:
    def test_sizes(self):
        for name, (d, q, m) in {
            "D1Q3": (1, 3, 3),
            "D2Q9": (2, 9, 6),
            "D3Q15": (3, 15, 10),
            "D3Q19": (3, 19, 10),
            "D3Q27": (3, 27, 10),
        }.items():
            lat = get_lattice(name)
            assert (lat.d, lat.q, lat.n_moments) == (d, q, m)

    def test_opposites(self, lattice):
        c = lattice.c
        opp = lattice.opposite
        assert np.array_equal(c[opp], -c)
        assert np.array_equal(opp[opp], np.arange(lattice.q))

    def test_weights_match_opposites(self, lattice):
        assert np.allclose(lattice.w[lattice.opposite], lattice.w)

    def test_arrays_immutable(self, lattice):
        for arr in (lattice.c, lattice.w, lattice.moment_matrix,
                    lattice.reconstruction_matrix, lattice.h2_cols):
            with pytest.raises(ValueError):
                arr[0] = 0

    def test_viscosity_roundtrip(self, lattice):
        tau = 0.77
        nu = lattice.viscosity(tau)
        assert nu == pytest.approx(lattice.cs2 * (tau - 0.5))
        assert lattice.tau_for_viscosity(nu) == pytest.approx(tau)

    def test_pair_index(self):
        lat = get_lattice("D3Q19")
        assert lat.pair_index(0, 0) == 0
        assert lat.pair_index(2, 0) == lat.pair_index(0, 2)
        assert lat.pair_index(2, 2) == 5

    def test_moment_slot(self):
        lat = get_lattice("D2Q9")
        assert lat.moment_slot("rho") == 0
        assert lat.moment_slot("j", 1) == 2
        assert lat.moment_slot("pi", 0, 1) == 4
        with pytest.raises(ValueError):
            lat.moment_slot("j", 5)
        with pytest.raises(ValueError):
            lat.moment_slot("nonsense")


class TestMatrices:
    def test_projection_rows(self, lattice):
        """moment_matrix rows are [1; c_a; H2 distinct]."""
        m = lattice.moment_matrix
        assert np.allclose(m[0], 1.0)
        assert np.allclose(m[1:1 + lattice.d], lattice.c.T)
        assert np.allclose(m[1 + lattice.d:], lattice.h2_cols.T)

    def test_projection_reconstruction_consistency(self, lattice):
        """M(R m) = m for any moment vector (Eq. 11 preserves its inputs)."""
        rng = np.random.default_rng(1)
        m = rng.standard_normal(lattice.n_moments)
        m[0] += 2.0
        f = lattice.reconstruction_matrix @ m
        assert np.allclose(lattice.moment_matrix @ f, m, atol=1e-12)

    def test_reconstruction_of_rest_state(self, lattice):
        m = np.zeros(lattice.n_moments)
        m[0] = 1.0
        assert np.allclose(lattice.reconstruction_matrix @ m, lattice.w)


class TestValidation:
    def test_rejects_asymmetric_set(self):
        # Fails moment validation (nonzero first moment) before the
        # opposite-pairing check can even run.
        with pytest.raises(ValueError):
            build_descriptor("bad", [[0], [1]], [0.5, 0.5])

    def test_rejects_bad_weight_sum(self):
        with pytest.raises(ValueError, match="sum"):
            build_descriptor("bad", [[0], [1], [-1]], [0.5, 0.5, 0.5])

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            build_descriptor("bad", [[0], [1], [-1]], [1.5, -0.25, -0.25])

    def test_rejects_wrong_cs2(self):
        # D1Q3 weights give cs2 = 1/3; claiming 1/2 must fail.
        with pytest.raises(ValueError, match="second velocity moment"):
            build_descriptor("bad", [[0], [1], [-1]],
                             [2 / 3, 1 / 6, 1 / 6], cs2=0.5)

    def test_rejects_mismatched_weight_count(self):
        with pytest.raises(ValueError, match="one entry per velocity"):
            build_descriptor("bad", [[0], [1], [-1]], [0.5, 0.5])


class TestSupportedBasis:
    def test_d2q9_minimal_basis(self):
        """Malaspinas (2015): D2Q9 supports {xxy, xyy} and {xxyy} only."""
        lat = get_lattice("D2Q9")
        triples = [lat.triple_tuples[i] for i in lat.h3_supported]
        quads = [lat.quad_tuples[i] for i in lat.h4_supported]
        assert triples == [(0, 0, 1), (0, 1, 1)]
        assert quads == [(0, 0, 1, 1)]

    def test_d3q19_basis(self):
        """D3Q19: six third-order and three fourth-order components."""
        lat = get_lattice("D3Q19")
        assert len(lat.h3_supported) == 6
        assert len(lat.h4_supported) == 3
        # H3_xyz and the diagonal H3_aaa vanish on D3Q19.
        triples = [lat.triple_tuples[i] for i in lat.h3_supported]
        assert (0, 1, 2) not in triples
        assert (0, 0, 0) not in triples

    def test_d3q27_full_third_order(self):
        lat = get_lattice("D3Q27")
        triples = [lat.triple_tuples[i] for i in lat.h3_supported]
        assert (0, 1, 2) in triples          # xyz supported on Q27
        assert len(lat.h3_supported) == 7

    def test_d2q9_h4xxxx_aliases_h2xx(self):
        """The alias that motivates the supported-basis filter."""
        lat = get_lattice("D2Q9")
        k4 = lat.quad_tuples.index((0, 0, 0, 0))
        k2 = lat.pair_tuples.index((0, 0))
        assert np.allclose(lat.h4_cols[:, k4], -lat.h2_cols[:, k2])
        assert k4 not in lat.h4_supported

    def test_supported_columns_empty_for_zero(self):
        cols = np.zeros((5, 2))
        lower = np.ones((5, 1))
        w = np.full(5, 0.2)
        assert _supported_columns(cols, lower, w).size == 0
