"""Unit tests for the stability-margin machinery."""


from repro.analysis import max_stable_amplitude, stability_map, survives


class TestSurvives:
    def test_gentle_run_survives(self):
        assert survives("ST", tau=0.8, u0=0.03, shape=(16, 16), steps=50)

    def test_violent_run_blows_up(self):
        # Near-sonic amplitude at near-zero viscosity must fail for BGK.
        assert not survives("ST", tau=0.505, u0=0.55, shape=(16, 16),
                            steps=200)

    def test_recursive_outlasts_bgk(self):
        """At some amplitude in between, MR-R survives where ST dies."""
        tau, shape, steps = 0.51, (24, 24), 400
        st = max_stable_amplitude("ST", tau, shape, steps, iters=4)
        mrr = max_stable_amplitude("MR-R", tau, shape, steps, iters=4)
        assert mrr >= st - 0.05


class TestBisection:
    def test_bracketing(self):
        m = max_stable_amplitude("ST", tau=0.8, shape=(16, 16), steps=50,
                                 lo=0.01, hi=0.05, iters=3)
        # Everything in this easy range survives: returns hi.
        assert m == 0.05

    def test_monotone_in_tau(self):
        lo = max_stable_amplitude("MR-R", 0.51, (16, 16), 200, iters=4)
        hi = max_stable_amplitude("MR-R", 0.8, (16, 16), 200, iters=4)
        assert hi >= lo - 0.03

    def test_map_structure(self):
        m = stability_map(taus=(0.6,), schemes=("ST", "MR-R"),
                          shape=(16, 16), steps=100, iters=3)
        assert set(m) == {("ST", 0.6), ("MR-R", 0.6)}
        assert all(0 < v <= 0.6 for v in m.values())
