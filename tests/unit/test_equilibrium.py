"""Unit tests for equilibrium distributions and equilibrium moments."""

import numpy as np
import pytest

from repro.core import (
    a3_equilibrium_cols,
    a4_equilibrium_cols,
    equilibrium,
    equilibrium_extended,
    equilibrium_moments,
    macroscopic,
    moments_from_f,
)


class TestSecondOrderEquilibrium:
    def test_rest_state_is_weights(self, lattice):
        rho = np.ones((3,) * lattice.d)
        u = np.zeros((lattice.d,) + rho.shape)
        feq = equilibrium(lattice, rho, u)
        assert np.allclose(feq, lattice.w.reshape((-1,) + (1,) * lattice.d))

    def test_moments_recovered(self, lattice, random_state):
        rho, u, _ = random_state
        feq = equilibrium(lattice, rho, u)
        r2, u2 = macroscopic(lattice, feq)
        assert np.allclose(r2, rho)
        assert np.allclose(u2, u)

    def test_second_moment_is_rho_uu(self, lattice, random_state):
        """sum H2 f_eq = rho u u — the identity behind Eq. 10's Pi_eq."""
        rho, u, _ = random_state
        feq = equilibrium(lattice, rho, u)
        m = moments_from_f(lattice, feq)
        for k, (a, b) in enumerate(lattice.pair_tuples):
            assert np.allclose(m[1 + lattice.d + k], rho * u[a] * u[b])

    def test_scales_linearly_with_density(self, lattice, random_state):
        rho, u, _ = random_state
        assert np.allclose(
            equilibrium(lattice, 2 * rho, u), 2 * equilibrium(lattice, rho, u)
        )

    def test_galilean_symmetry(self, lattice, random_state):
        """f_eq(rho, -u) at c equals f_eq(rho, u) at -c."""
        rho, u, _ = random_state
        f_plus = equilibrium(lattice, rho, u)
        f_minus = equilibrium(lattice, rho, -u)
        assert np.allclose(f_minus, f_plus[lattice.opposite])

    def test_rejects_bad_velocity_shape(self, lattice):
        rho = np.ones((3,) * lattice.d)
        with pytest.raises(ValueError, match="leading axis"):
            equilibrium(lattice, rho, np.zeros((lattice.d + 1, *rho.shape)))


class TestEquilibriumMoments:
    def test_matches_projection(self, lattice, random_state):
        rho, u, _ = random_state
        m_direct = equilibrium_moments(lattice, rho, u)
        m_proj = moments_from_f(lattice, equilibrium(lattice, rho, u))
        assert np.allclose(m_direct, m_proj, atol=1e-12)


class TestExtendedEquilibrium:
    def test_conserves_hydrodynamics(self, lattice, random_state):
        rho, u, _ = random_state
        feq4 = equilibrium_extended(lattice, rho, u)
        r2, u2 = macroscopic(lattice, feq4)
        assert np.allclose(r2, rho)
        assert np.allclose(u2, u)

    def test_reduces_to_second_order_at_rest(self, lattice):
        rho = np.full((3,) * lattice.d, 1.1)
        u = np.zeros((lattice.d,) + rho.shape)
        assert np.allclose(
            equilibrium_extended(lattice, rho, u), equilibrium(lattice, rho, u)
        )

    def test_higher_order_terms_are_order_u3(self, lattice):
        """Extended minus second-order equilibrium scales like u^3."""
        rho = np.ones((2,) * lattice.d)
        u1 = np.full((lattice.d,) + rho.shape, 0.02)
        u2 = 2 * u1
        d1 = np.abs(equilibrium_extended(lattice, rho, u1)
                    - equilibrium(lattice, rho, u1)).max()
        d2 = np.abs(equilibrium_extended(lattice, rho, u2)
                    - equilibrium(lattice, rho, u2)).max()
        if d1 > 0:
            assert 6.0 < d2 / d1 < 18.0       # ~8x for cubic leading term

    def test_a3_a4_equilibrium_cols(self, lattice, random_state):
        rho, u, _ = random_state
        a3 = a3_equilibrium_cols(lattice, rho, u)
        for k, (a, b, c) in enumerate(lattice.triple_tuples):
            assert np.allclose(a3[k], rho * u[a] * u[b] * u[c])
        a4 = a4_equilibrium_cols(lattice, rho, u)
        for k, (a, b, c, e) in enumerate(lattice.quad_tuples):
            assert np.allclose(a4[k], rho * u[a] * u[b] * u[c] * u[e])
