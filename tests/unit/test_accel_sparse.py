"""Unit tests for the sparse fluid-node-list backend (repro.accel.sparse)."""

import numpy as np
import pytest

from repro.accel import BACKENDS, SparseMRCore, SparseSTCore, solver_caps
from repro.accel.sparse import boundaries_fold
from repro.boundary import FullwayBounceBack, HalfwayBounceBack
from repro.geometry import (Domain, cylinder_in_channel, lid_driven_cavity,
                            porous_medium)
from repro.lattice import get_lattice
from repro.solver import (STSolver, channel_problem, forced_channel_problem,
                          make_solver)


def masked_domain(shape, fraction=0.4, seed=3):
    rng = np.random.default_rng(seed)
    nt = np.zeros(shape, dtype=np.int8)
    nt[rng.random(shape) < fraction] = 1
    nt.flat[0] = 0
    return Domain(nt)


def run_pair(build, steps=5):
    """Run fused vs sparse instances of one problem; return the max
    absolute macroscopic difference over fluid nodes."""
    states = []
    solid = None
    for backend in ("fused", "sparse"):
        s = build(backend)
        s.run(steps)
        rho, u = s.macroscopic()
        states.append(np.concatenate([rho[None], u]))
        solid = s.domain.solid_mask
    return float(np.abs(states[0][:, ~solid] - states[1][:, ~solid]).max())


class TestRegistration:
    def test_backend_listed(self):
        assert "sparse" in BACKENDS
        # available_backends() slices the optional numba entry off the
        # end; sparse must stay inside the always-available prefix.
        assert BACKENDS.index("sparse") < BACKENDS.index("numba")

    @pytest.mark.parametrize("scheme", ["ST", "MR-P", "MR-R"])
    def test_solvers_advertise_support(self, scheme):
        lat = get_lattice("D2Q9")
        s = make_solver(scheme, lat, masked_domain((8, 6)), 0.8,
                        boundaries=[HalfwayBounceBack()], backend="sparse")
        assert solver_caps(s) is not None
        assert s.backend == "sparse"

    def test_state_values_per_node_counts_single_lattice(self):
        lat = get_lattice("D2Q9")
        s = STSolver(lat, masked_domain((8, 6)), 0.8,
                     boundaries=[HalfwayBounceBack()], backend="sparse")
        assert s.state_values_per_node == lat.q

    def test_fullway_rejected_at_construction(self):
        lat = get_lattice("D2Q9")
        with pytest.raises(ValueError, match="post-collide"):
            make_solver("ST", lat, masked_domain((8, 6)), 0.8,
                        boundaries=[FullwayBounceBack()], backend="sparse")

    def test_boundaries_fold_predicate(self):
        assert boundaries_fold([])
        assert boundaries_fold([HalfwayBounceBack()])
        assert not boundaries_fold([HalfwayBounceBack(),
                                    HalfwayBounceBack()])
        assert not boundaries_fold([FullwayBounceBack()])


class TestLeanPathParity:
    @pytest.mark.parametrize("scheme", ["ST", "MR-P", "MR-R"])
    def test_porous_bounceback(self, scheme):
        """Folded bounce-back gather matches the fused dense step."""
        lat = get_lattice("D2Q9")
        domain = porous_medium((16, 14), solid_fraction=0.5, seed=1)

        def build(backend):
            rng = np.random.default_rng(11)
            u0 = 0.03 * rng.standard_normal((2, 16, 14))
            return make_solver(scheme, lat, domain, 0.8,
                               boundaries=[HalfwayBounceBack()], u0=u0,
                               backend=backend)

        assert run_pair(build) < 1e-13

    def test_d3q19_cylinder_mask(self):
        lat = get_lattice("D3Q19")
        domain = masked_domain((8, 7, 6), fraction=0.35, seed=5)

        def build(backend):
            return make_solver("MR-P", lat, domain, 0.7,
                               boundaries=[HalfwayBounceBack()],
                               backend=backend)

        assert run_pair(build) < 1e-13

    def test_moving_wall_momentum_folds(self):
        """The lid-driven cavity's moving-wall momentum terms fold into
        the gather at parity with the dense hook."""
        lat = get_lattice("D2Q9")
        domain = lid_driven_cavity(12)
        lid = np.zeros((2, 12, 12))
        lid[0, :, -1] = 0.08

        def build(backend):
            return make_solver("MR-R", lat, domain, 0.8,
                               boundaries=[HalfwayBounceBack(
                                   wall_velocity=lid)],
                               backend=backend)

        assert run_pair(build, steps=8) < 1e-13

    def test_guo_forcing(self):
        def build(backend):
            return forced_channel_problem("MR-P", "D2Q9", (16, 10), tau=0.8,
                                          u_max=0.04, backend=backend)

        assert run_pair(build) < 1e-13

    def test_variable_tau_power_law(self):
        from repro.solver.non_newtonian import PowerLawMRPSolver

        lat = get_lattice("D2Q9")
        from repro.geometry import channel_2d

        domain = channel_2d(14, 10, with_io=False)
        force = np.zeros(2)
        force[0] = 1e-5

        def build(backend):
            rng = np.random.default_rng(7)
            u0 = 0.02 * rng.standard_normal((2, 14, 10))
            u0[:, domain.solid_mask] = 0.0
            return PowerLawMRPSolver(lat, domain, 0.8,
                                     boundaries=[HalfwayBounceBack()],
                                     force=force, consistency=0.1,
                                     exponent=0.8, u0=u0, backend=backend)

        assert run_pair(build) < 1e-13


class TestDenseFallbackParity:
    @pytest.mark.parametrize("scheme", ["ST", "MR-R"])
    def test_channel_with_inlet_outlet(self, scheme):
        """Inlet/outlet hooks route through the dense fallback at parity."""

        def build(backend):
            return channel_problem(scheme, "D2Q9", (20, 12), tau=0.8,
                                   u_max=0.04, backend=backend)

        assert run_pair(build, steps=6) < 1e-13

    def test_cylinder_channel(self):
        domain = cylinder_in_channel(24, 14, 6.0, 6.5, 3.0, with_io=False)
        lat = get_lattice("D2Q9")
        force = np.zeros(2)
        force[0] = 2e-6

        def build(backend):
            return make_solver("MR-P", lat, domain, 0.8,
                               boundaries=[HalfwayBounceBack()], force=force,
                               backend=backend)

        assert run_pair(build, steps=10) < 1e-13

    def test_fallback_flag_matches_boundaries(self):
        lat = get_lattice("D2Q9")
        solid = np.zeros((10, 8), bool)
        solid[:, 0] = solid[:, -1] = True
        lean = SparseSTCore(lat, solid, 0.8,
                            boundaries=[HalfwayBounceBack()])
        assert lean.lean
        fallback = SparseMRCore(lat, solid, 0.8, scheme="MR-P",
                                boundaries=[HalfwayBounceBack(),
                                            HalfwayBounceBack()])
        assert not fallback.lean


class TestDistributedSparse:
    def test_emulated_forced_channel_matches_reference(self):
        from repro.parallel import RunSpec

        states = []
        for accel in ("reference", "sparse"):
            spec = RunSpec("forced-channel", "MR-P", "D2Q9", (32, 18), 2,
                           tau=0.8, accel=accel, options={"u_max": 0.04})
            s = spec.build()
            s.run(20)
            rho, u = s.gather_macroscopic()
            states.append(np.concatenate([rho[None], u]))
        assert np.abs(states[0] - states[1]).max() < 1e-13

    def test_post_collide_boundary_rejected(self):
        from repro.geometry import channel_2d
        from repro.parallel.decomposition import DistributedST

        lat = get_lattice("D2Q9")
        with pytest.raises(ValueError, match="post-collide"):
            DistributedST(lat, channel_2d(16, 10, with_io=False), 0.8, 2,
                          periodic_axis0=True,
                          boundary_factory=lambda r, n: [FullwayBounceBack()],
                          accel="sparse")
