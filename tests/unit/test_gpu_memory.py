"""Unit tests for the global-memory model and traffic tracker."""

import numpy as np
import pytest

from repro.gpu.memory import (
    ITEM_BYTES,
    SECTOR_BYTES,
    GlobalArray,
    MemoryTracker,
    TrafficReport,
)


class TestTrafficReport:
    def test_totals(self):
        r = TrafficReport(bytes_read=100, bytes_written=50,
                          read_transactions=4, write_transactions=2)
        assert r.total_bytes == 150
        assert r.sector_bytes_read == 128
        assert r.sector_bytes_written == 64
        assert r.sector_bytes_total == 192

    def test_add(self):
        a = TrafficReport(1, 2, 3, 4)
        b = TrafficReport(10, 20, 30, 40)
        c = a + b
        assert (c.bytes_read, c.bytes_written) == (11, 22)
        assert (c.read_transactions, c.write_transactions) == (33, 44)

    def test_per_node(self):
        r = TrafficReport(bytes_read=800, bytes_written=200,
                          read_transactions=25, write_transactions=7)
        pn = r.per_node(100)
        assert pn["bytes_read"] == 8.0
        assert pn["bytes_total"] == 10.0
        assert pn["sector_bytes_total"] == pytest.approx(32 * 32 / 100)


class TestGlobalArray:
    def test_read_write_roundtrip(self):
        tr = MemoryTracker()
        a = GlobalArray("x", 100, tr)
        idx = np.array([3, 7, 11])
        a.write(idx, np.array([1.0, 2.0, 3.0]))
        assert np.allclose(a.read(idx), [1, 2, 3])

    def test_base_offset_wraps(self):
        tr = MemoryTracker()
        a = GlobalArray("x", 10, tr, init=np.arange(10.0))
        assert np.allclose(a.read(np.array([8, 9]), base=3), [1.0, 2.0])

    def test_init_too_large(self):
        with pytest.raises(ValueError, match="larger"):
            GlobalArray("x", 3, MemoryTracker(), init=np.zeros(5))

    def test_write_count_mismatch(self):
        a = GlobalArray("x", 10, MemoryTracker())
        with pytest.raises(ValueError, match="count"):
            a.write(np.array([1, 2]), np.array([1.0]))

    def test_bytes_counted(self):
        tr = MemoryTracker()
        a = GlobalArray("x", 100, tr)
        a.read(np.arange(10))
        a.write(np.arange(4), np.zeros(4))
        assert tr.report.bytes_read == 10 * ITEM_BYTES
        assert tr.report.bytes_written == 4 * ITEM_BYTES

    def test_untracked_host_copy(self):
        tr = MemoryTracker()
        a = GlobalArray("x", 8, tr, init=np.arange(8.0))
        copy = a.read_untracked()
        assert np.allclose(copy, np.arange(8))
        assert tr.report.bytes_read == 0


class TestSectorCounting:
    def test_coalesced_access(self):
        """32 consecutive doubles = 8 sectors of 32 B."""
        tr = MemoryTracker()
        a = GlobalArray("x", 1000, tr)
        a.read(np.arange(32))
        assert tr.report.read_transactions == 8

    def test_strided_access_wastes_sectors(self):
        """Stride-4 doubles touch one sector per element."""
        tr = MemoryTracker()
        a = GlobalArray("x", 1000, tr)
        a.read(np.arange(0, 128, 4))
        assert tr.report.read_transactions == 32

    def test_misaligned_access(self):
        """A one-element shift touches one extra sector."""
        tr = MemoryTracker()
        a = GlobalArray("x", 1000, tr)
        a.read(np.arange(1, 33))
        assert tr.report.read_transactions == 9

    def test_duplicate_indices_one_sector(self):
        tr = MemoryTracker()
        a = GlobalArray("x", 100, tr)
        a.read(np.zeros(64, dtype=int))
        assert tr.report.read_transactions == 1
        assert tr.report.bytes_read == 64 * ITEM_BYTES

    def test_disabled_tracker(self):
        tr = MemoryTracker()
        tr.enabled = False
        a = GlobalArray("x", 100, tr)
        a.read(np.arange(10))
        assert tr.report.bytes_read == 0


class TestL2Cache:
    def test_repeat_read_hits(self):
        tr = MemoryTracker(l2_bytes=1024)
        a = GlobalArray("x", 100, tr)
        a.read(np.arange(32))
        a.read(np.arange(32))          # second read: all hits
        assert tr.report.read_transactions == 8

    def test_flush_forces_misses(self):
        tr = MemoryTracker(l2_bytes=1024)
        a = GlobalArray("x", 100, tr)
        a.read(np.arange(32))
        tr.flush_cache()
        a.read(np.arange(32))
        assert tr.report.read_transactions == 16

    def test_writes_allocate(self):
        """A read following a write to the same sectors hits in L2."""
        tr = MemoryTracker(l2_bytes=1024)
        a = GlobalArray("x", 100, tr)
        a.write(np.arange(8), np.zeros(8))
        a.read(np.arange(8))
        assert tr.report.write_transactions == 2
        assert tr.report.read_transactions == 0

    def test_capacity_eviction(self):
        """Working set larger than L2 gets evicted (LRU)."""
        cap_sectors = 4
        tr = MemoryTracker(l2_bytes=cap_sectors * SECTOR_BYTES)
        a = GlobalArray("x", 10000, tr)
        a.read(np.arange(0, 8 * 4, 4))     # 8 sectors > capacity 4
        tr.report = type(tr.report)()
        a.read(np.arange(0, 8 * 4, 4))     # early sectors were evicted
        assert tr.report.read_transactions == 8

    def test_distinct_arrays_do_not_collide(self):
        tr = MemoryTracker(l2_bytes=4096)
        a = GlobalArray("a", 100, tr)
        b = GlobalArray("b", 100, tr)
        a.read(np.arange(8))
        b.read(np.arange(8))               # same offsets, different space
        assert tr.report.read_transactions == 4
