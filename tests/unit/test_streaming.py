"""Unit tests for streaming (Eq. 7)."""

import numpy as np

from repro.core import pull_gather, stream_pull, stream_push, streaming_offsets


class TestStreamPush:
    def test_displaces_by_velocity(self, lattice, rng):
        grid = (5,) * lattice.d
        f = rng.standard_normal((lattice.q, *grid))
        out = stream_push(lattice, f)
        x0 = (1,) * lattice.d
        for i in range(lattice.q):
            dest = tuple((np.array(x0) + lattice.c[i]) % 5)
            assert out[i][dest] == f[i][x0]

    def test_conserves_mass_per_component(self, lattice, rng):
        grid = (4,) * lattice.d
        f = rng.standard_normal((lattice.q, *grid))
        out = stream_push(lattice, f)
        assert np.allclose(out.sum(axis=tuple(range(1, 1 + lattice.d))),
                           f.sum(axis=tuple(range(1, 1 + lattice.d))))

    def test_rest_component_unchanged(self, lattice, rng):
        grid = (4,) * lattice.d
        f = rng.standard_normal((lattice.q, *grid))
        rest = np.where((lattice.c == 0).all(axis=1))[0][0]
        out = stream_push(lattice, f)
        assert np.array_equal(out[rest], f[rest])

    def test_roundtrip_with_opposite(self, lattice, rng):
        """Streaming then streaming the opposite set restores the field."""
        grid = (4,) * lattice.d
        f = rng.standard_normal((lattice.q, *grid))
        once = stream_push(lattice, f)
        # Stream each component backwards by using the opposite velocity.
        back = stream_push(lattice, once[lattice.opposite])[lattice.opposite]
        assert np.allclose(back, f)

    def test_out_buffer(self, lattice, rng):
        grid = (4,) * lattice.d
        f = rng.standard_normal((lattice.q, *grid))
        buf = np.empty_like(f)
        out = stream_push(lattice, f, out=buf)
        assert out is buf
        assert np.allclose(out, stream_push(lattice, f))

    def test_period_equals_grid_extent(self, lattice, rng):
        """Streaming N times on an N-periodic grid is the identity."""
        n = 4
        grid = (n,) * lattice.d
        f = rng.standard_normal((lattice.q, *grid))
        out = f
        for _ in range(n):
            out = stream_push(lattice, out)
        assert np.allclose(out, f)


class TestPullForms:
    def test_pull_equals_push_displacement(self, lattice, rng):
        grid = (4,) * lattice.d
        f = rng.standard_normal((lattice.q, *grid))
        assert np.allclose(stream_pull(lattice, f), stream_push(lattice, f))

    def test_pull_gather_matches_roll(self, lattice, rng):
        grid = (5,) * lattice.d
        f = rng.standard_normal((lattice.q, *grid))
        mesh = np.meshgrid(*[np.arange(s) for s in grid], indexing="ij")
        idx = tuple(m.ravel() for m in mesh)
        gathered = pull_gather(lattice, f, idx)
        assert np.allclose(gathered.reshape(lattice.q, *grid),
                           stream_push(lattice, f))

    def test_pull_gather_subset(self, lattice, rng):
        grid = (5,) * lattice.d
        f = rng.standard_normal((lattice.q, *grid))
        node = tuple(np.array([2]) for _ in range(lattice.d))
        g = pull_gather(lattice, f, node)
        for i in range(lattice.q):
            src = tuple((2 - lattice.c[i, a]) % 5 for a in range(lattice.d))
            assert g[i, 0] == f[i][src]


def test_streaming_offsets_alias(lattice):
    assert streaming_offsets(lattice) is lattice.c


class TestInPlaceGuard:
    def test_out_is_f_raises(self, lattice, rng):
        """In-place streaming silently corrupted data; now it raises."""
        import pytest

        grid = (4,) * lattice.d
        f = rng.standard_normal((lattice.q, *grid))
        with pytest.raises(ValueError, match="in place"):
            stream_push(lattice, f, out=f)

    def test_overlapping_view_raises(self, lattice, rng):
        import pytest

        grid = (4,) * lattice.d
        buf = rng.standard_normal((lattice.q + 1, *grid))
        f = buf[: lattice.q]
        shifted = buf[1:]
        with pytest.raises(ValueError, match="in place"):
            stream_push(lattice, f, out=shifted)

    def test_distinct_out_still_accepted(self, lattice, rng):
        grid = (4,) * lattice.d
        f = rng.standard_normal((lattice.q, *grid))
        out = np.empty_like(f)
        assert stream_push(lattice, f, out=out) is out
