"""Unit tests for GPU device models (paper Table 1)."""

import pytest

from repro.gpu import MI100, V100, available_devices, get_device


class TestTable1Values:
    """The device models must carry exactly the paper's Table 1 numbers."""

    def test_v100(self):
        assert V100.frequency_mhz == 1455
        assert V100.cores == 5120
        assert V100.sm_count == 80
        assert V100.shared_mem_per_sm_kb == 96
        assert V100.l1_kb == 96
        assert V100.l2_kb == 6144
        assert V100.memory_gb == 16
        assert V100.bandwidth_gbs == 900
        assert V100.compiler == "nvcc v11.0.221"
        assert V100.warp_size == 32

    def test_mi100(self):
        assert MI100.frequency_mhz == 1502
        assert MI100.cores == 7680
        assert MI100.sm_count == 120
        assert MI100.shared_mem_per_sm_kb == 64
        assert MI100.l1_kb == 16
        assert MI100.l2_kb == 8192
        assert MI100.memory_gb == 32
        assert MI100.bandwidth_gbs == 1228.86
        assert MI100.compiler == "hipcc 4.2"
        assert MI100.warp_size == 64

    def test_derived_units(self):
        assert V100.bandwidth_bytes_per_s == pytest.approx(900e9)
        assert V100.fp64_flops_per_s == pytest.approx(7.8e12)
        assert V100.shared_mem_per_sm_bytes == 96 * 1024
        assert MI100.memory_bytes() == 32 * 1024 ** 3


class TestRegistry:
    def test_lookup(self):
        assert get_device("v100") is V100
        assert get_device("MI100") is MI100

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown device"):
            get_device("H100")

    def test_available(self):
        assert available_devices() == ["MI100", "V100"]
