"""Unit tests for the interpolated (Bouzidi) curved bounce-back boundary."""

import math

import numpy as np
import pytest

from repro.boundary import (HalfwayBounceBack, InterpolatedBounceBack,
                            circle_sdf, sphere_sdf)
from repro.boundary.curved import _link_fractions
from repro.geometry import channel_2d
from repro.lattice import get_lattice
from repro.solver import make_solver


def slab_sdf(w0: float, w1: float):
    """Signed distance of the two-wall channel slab: bottom surface at
    ``y = w0``, top surface at ``y = w1`` (negative inside the walls)."""
    return lambda p: np.minimum(p[1] - w0, w1 - p[1])


def slab_channel(n, w0, curved, tau=0.8, u_max=0.05, scheme="ST",
                 backend="fused"):
    """Force-driven Poiseuille channel with walls at fractional offsets."""
    lat = get_lattice("D2Q9")
    dom = channel_2d(4, n, with_io=False)
    h = (n - 1 - w0) - w0
    nu = lat.viscosity(tau)
    force = np.zeros(2)
    force[0] = 8.0 * nu * u_max / h**2
    bcs = ([InterpolatedBounceBack(slab_sdf(w0, n - 1 - w0))] if curved
           else [HalfwayBounceBack()])
    return make_solver(scheme, lat, dom, tau, boundaries=bcs, force=force,
                       backend=backend)


def poiseuille_error(n, w0, curved):
    """Steady-state L-infinity velocity error against the exact parabola
    through the true (fractionally offset) wall positions."""
    u_max = 0.05
    s = slab_channel(n, w0, curved, u_max=u_max)
    s.run_to_steady_state(tol=1e-12, check_interval=200, max_steps=400_000)
    nu = s.lat.viscosity(s.tau)
    y = np.arange(n, dtype=float)
    f = s.force[0].max()
    exact = f / (2 * nu) * (y - w0) * ((n - 1 - w0) - y)
    u = s.velocity()[0][1]
    return float(np.abs(u[1:-1] - exact[1:-1]).max() / u_max)


class TestSignedDistances:
    def test_circle_sdf(self):
        sdf = circle_sdf(5.0, 5.0, 2.0)
        pts = np.array([[5.0, 7.5, 5.0], [5.0, 5.0, 7.0]])
        d = sdf(pts)
        assert d[0] == pytest.approx(-2.0)      # center: inside by radius
        assert d[1] == pytest.approx(0.5)       # 2.5 from center, r = 2
        assert d[2] == pytest.approx(0.0)       # on the surface

    def test_sphere_sdf(self):
        sdf = sphere_sdf(1.0, 2.0, 3.0, 1.5)
        p = np.array([[1.0], [2.0], [5.0]])
        assert sdf(p)[0] == pytest.approx(0.5)


class TestLinkFractions:
    @pytest.mark.parametrize("w0", [0.1, 0.3, 0.5, 0.75, 0.9])
    def test_plane_wall_fraction_recovered(self, w0):
        """Bisection recovers the exact wall crossing on a plane SDF."""
        sdf = slab_sdf(w0, 100.0)
        start = np.array([[2.0], [1.0]])        # fluid node at y = 1
        q = _link_fractions(sdf, start, np.array([0, -1]))
        assert q[0] == pytest.approx(1.0 - w0, abs=1e-9)

    def test_diagonal_link(self):
        sdf = slab_sdf(0.25, 100.0)
        start = np.array([[2.0], [1.0]])
        q = _link_fractions(sdf, start, np.array([1, -1]))
        # The wall plane y = 0.25 sits 0.75 of the way down the unit
        # y-descent regardless of the x component.
        assert q[0] == pytest.approx(0.75, abs=1e-9)

    def test_thin_gap_fallback(self):
        """A link whose solid end is not actually below the surface (the
        SDF never goes negative along it) falls back to q = 1/2."""
        sdf = lambda p: np.ones(p.shape[1])     # nowhere solid
        start = np.array([[2.0], [1.0]])
        q = _link_fractions(sdf, start, np.array([0, -1]))
        assert q[0] == pytest.approx(0.5)


class TestHalfwayReduction:
    @pytest.mark.parametrize("scheme", ["ST", "MR-R"])
    def test_q_half_equals_halfway_bounce_back(self, scheme):
        """At q = 1/2 every Bouzidi coefficient collapses to the plain
        half-way reflection; the two boundaries must match bit for bit."""
        n = 12
        states = []
        for curved in (True, False):
            s = slab_channel(n, 0.5, curved, scheme=scheme)
            s.run(15)
            rho, u = s.macroscopic()
            states.append(np.concatenate([rho[None], u]))
        fluid = slice(1, n - 1)
        diff = np.abs(states[0][..., fluid] - states[1][..., fluid]).max()
        assert diff < 1e-14, diff

    def test_thin_gap_channel_runs_stably(self):
        """One-fluid-node gaps (behind-node solid) use the fallback
        closure and stay finite."""
        lat = get_lattice("D2Q9")
        dom = channel_2d(4, 3, with_io=False)   # single fluid row
        force = np.zeros(2)
        force[0] = 1e-5
        s = make_solver("ST", lat, dom, 0.8,
                        boundaries=[InterpolatedBounceBack(
                            slab_sdf(0.3, 1.7))],
                        force=force, backend="fused")
        s.run(50)
        rho, u = s.macroscopic()
        assert np.isfinite(rho).all() and np.isfinite(u).all()


class TestSecondOrderConvergence:
    @pytest.mark.parametrize("w0", [0.3, 0.75])
    def test_shifted_wall_poiseuille_orders(self, w0):
        """Bouzidi converges at second order in the wall position; the
        half-way staircase (wall pinned to the half-link plane) is first
        order. ``w0 < 0.5`` exercises the near-wall (q > 1/2) closure,
        ``w0 > 0.5`` the two-point (q < 1/2) interpolation."""
        sizes = (9, 17, 33)
        errs_c = [poiseuille_error(n, w0, curved=True) for n in sizes]
        errs_s = [poiseuille_error(n, w0, curved=False) for n in sizes]
        orders_c = [math.log(errs_c[i] / errs_c[i + 1]) / math.log(2)
                    for i in range(2)]
        orders_s = [math.log(errs_s[i] / errs_s[i + 1]) / math.log(2)
                    for i in range(2)]
        assert min(orders_c) >= 1.8, (orders_c, errs_c)
        assert max(orders_s) <= 1.4, (orders_s, errs_s)
        assert errs_c[-1] < errs_s[-1]


class TestCurvedForceAccumulator:
    def test_wall_drag_balances_body_force(self):
        """At steady state the accumulated link force on the two walls
        balances the total driving body force (momentum-exchange
        consistency of the curved accumulator)."""
        s = slab_channel(14, 0.3, curved=True)
        s.run_to_steady_state(tol=1e-12, check_interval=200,
                              max_steps=400_000)
        bc = s.boundaries[0]
        s.run(1)                                # one step: fresh last_force
        driving = s.force[0].sum()
        assert bc.last_force[0] == pytest.approx(driving, rel=1e-2)
        assert abs(bc.last_force[1]) < 1e-8
