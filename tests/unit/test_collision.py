"""Unit tests for the three collision operators and their moment forms."""

import numpy as np
import pytest

from repro.core import (
    BGKCollision,
    ProjectiveRegularizedCollision,
    RecursiveRegularizedCollision,
    collide_moments_projective,
    collide_moments_recursive,
    collision_from_name,
    equilibrium,
    f_from_moments,
    macroscopic,
    moments_from_f,
)

OPERATORS = [BGKCollision, ProjectiveRegularizedCollision, RecursiveRegularizedCollision]


class TestCommonProperties:
    @pytest.mark.parametrize("op_cls", OPERATORS)
    def test_conserves_mass_momentum(self, lattice, random_state, op_cls):
        _, _, f = random_state
        f_star = op_cls(0.8)(lattice, f)
        r1, u1 = macroscopic(lattice, f)
        r2, u2 = macroscopic(lattice, f_star)
        assert np.allclose(r1, r2, atol=1e-12)
        assert np.allclose(r1 * u1, r2 * u2, atol=1e-12)

    @pytest.mark.parametrize("op_cls", [BGKCollision, ProjectiveRegularizedCollision])
    def test_equilibrium_is_fixed_point(self, lattice, random_state, op_cls):
        rho, u, _ = random_state
        feq = equilibrium(lattice, rho, u)
        assert np.allclose(op_cls(0.7)(lattice, feq), feq, atol=1e-12)

    def test_extended_equilibrium_is_recursive_fixed_point(self, lattice, random_state):
        """MR-R's equilibrium includes the third/fourth-order Hermite terms
        (Eq. 14 with zero non-equilibrium parts)."""
        from repro.core import equilibrium_extended

        rho, u, _ = random_state
        feq4 = equilibrium_extended(lattice, rho, u)
        assert np.allclose(
            RecursiveRegularizedCollision(0.7)(lattice, feq4), feq4, atol=1e-12
        )

    @pytest.mark.parametrize("op_cls", [BGKCollision, ProjectiveRegularizedCollision])
    def test_tau_one_projects_to_equilibrium(self, lattice, random_state, op_cls):
        """At tau = 1 the non-equilibrium part is fully discarded."""
        _, _, f = random_state
        rho, u = macroscopic(lattice, f)
        f_star = op_cls(1.0)(lattice, f)
        assert np.allclose(f_star, equilibrium(lattice, rho, u), atol=1e-12)

    def test_recursive_tau_one_projects_to_extended_equilibrium(
            self, lattice, random_state):
        from repro.core import equilibrium_extended

        _, _, f = random_state
        rho, u = macroscopic(lattice, f)
        f_star = RecursiveRegularizedCollision(1.0)(lattice, f)
        assert np.allclose(f_star, equilibrium_extended(lattice, rho, u),
                           atol=1e-12)

    @pytest.mark.parametrize("op_cls", OPERATORS)
    def test_invalid_tau_rejected(self, op_cls):
        with pytest.raises(ValueError, match="tau"):
            op_cls(0.5)
        with pytest.raises(ValueError, match="tau"):
            op_cls(-1.0)

    @pytest.mark.parametrize("op_cls", OPERATORS)
    def test_omega(self, op_cls):
        assert op_cls(0.8).omega == pytest.approx(1.25)

    def test_viscosity_passthrough(self, paper_lattice):
        op = BGKCollision(0.9)
        assert op.viscosity(paper_lattice) == pytest.approx(0.4 / 3)


class TestRegularizationEffects:
    def test_projective_filters_ghost_content(self, lattice, random_state):
        """Projective collision output is fully determined by the moments."""
        _, _, f = random_state
        op = ProjectiveRegularizedCollision(0.8)
        f_star = op(lattice, f)
        # Add ghost noise that leaves the first three moment sets unchanged.
        m = moments_from_f(lattice, f)
        f_ghost = f_from_moments(lattice, m)      # same moments, no ghosts
        assert np.allclose(op(lattice, f_ghost), f_star, atol=1e-12)

    def test_bgk_keeps_ghost_content(self, lattice, random_state):
        """BGK, by contrast, is sensitive to ghost (higher-order) content."""
        _, _, f = random_state
        op = BGKCollision(0.8)
        m = moments_from_f(lattice, f)
        f_ghost = f_from_moments(lattice, m)
        if not np.allclose(f, f_ghost):
            assert not np.allclose(op(lattice, f), op(lattice, f_ghost))

    def test_projective_vs_recursive_differ(self, paper_lattice, rng):
        lat = paper_lattice
        grid = (4,) * lat.d
        rho = 1.0 + 0.05 * rng.standard_normal(grid)
        u = 0.04 * rng.standard_normal((lat.d, *grid))
        f = equilibrium(lat, rho, u) * (
            1.0 + 0.02 * rng.standard_normal((lat.q, *grid))
        )
        fp = ProjectiveRegularizedCollision(0.8)(lat, f)
        fr = RecursiveRegularizedCollision(0.8)(lat, f)
        assert not np.allclose(fp, fr)

    def test_recursive_equals_projective_at_zero_velocity(self, lattice, rng):
        """With u = 0 the recursions vanish, so MR-R == MR-P."""
        grid = (3,) * lattice.d
        rho = 1.0 + 0.05 * rng.standard_normal(grid)
        u0 = np.zeros((lattice.d, *grid))
        f = equilibrium(lattice, rho, u0)
        pi_noise = rng.standard_normal((lattice.n_pairs, *grid)) * 0.01
        from repro.core import hermite_delta_second_order

        f = f + hermite_delta_second_order(lattice, pi_noise)
        fp = ProjectiveRegularizedCollision(0.8)(lattice, f)
        fr = RecursiveRegularizedCollision(0.8)(lattice, f)
        assert np.allclose(fp, fr, atol=1e-13)


class TestMomentSpaceForms:
    def test_projective_equivalence(self, lattice, random_state):
        """Eqs. 10-11 == Eq. 9 to machine precision (losslessness)."""
        _, _, f = random_state
        tau = 0.8
        fd = ProjectiveRegularizedCollision(tau)(lattice, f)
        fm = f_from_moments(
            lattice, collide_moments_projective(lattice, moments_from_f(lattice, f), tau)
        )
        assert np.allclose(fd, fm, atol=1e-13)

    def test_recursive_equivalence(self, lattice, random_state):
        """Eqs. 10+12-14 in moment space == distribution space."""
        _, _, f = random_state
        tau = 0.8
        fd = RecursiveRegularizedCollision(tau)(lattice, f)
        fm = collide_moments_recursive(lattice, moments_from_f(lattice, f), tau)
        assert np.allclose(fd, fm, atol=1e-13)

    def test_moment_collision_conserves(self, lattice, random_state):
        _, _, f = random_state
        m = moments_from_f(lattice, f)
        m_star = collide_moments_projective(lattice, m, 0.9)
        assert np.allclose(m_star[0], m[0])
        assert np.allclose(m_star[1:1 + lattice.d], m[1:1 + lattice.d])

    def test_moment_collision_relaxes_pi(self, lattice, random_state):
        _, _, f = random_state
        m = moments_from_f(lattice, f)
        tau = 0.8
        m_star = collide_moments_projective(lattice, m, tau)
        rho = m[0]
        u = m[1:1 + lattice.d] / rho
        for k, (a, b) in enumerate(lattice.pair_tuples):
            pi_eq = rho * u[a] * u[b]
            expected = pi_eq + (1 - 1 / tau) * (m[1 + lattice.d + k] - pi_eq)
            assert np.allclose(m_star[1 + lattice.d + k], expected)

    def test_invalid_tau(self, paper_lattice):
        m = np.zeros((paper_lattice.n_moments, 2, 2) if paper_lattice.d == 2
                     else (paper_lattice.n_moments, 2, 2, 2))
        m[0] = 1.0
        with pytest.raises(ValueError):
            collide_moments_projective(paper_lattice, m, 0.3)
        with pytest.raises(ValueError):
            collide_moments_recursive(paper_lattice, m, 0.3)


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("bgk", BGKCollision), ("ST", BGKCollision),
        ("projective", ProjectiveRegularizedCollision),
        ("MR-P", ProjectiveRegularizedCollision),
        ("recursive", RecursiveRegularizedCollision),
        ("mr_r", RecursiveRegularizedCollision),
    ])
    def test_names(self, name, cls):
        assert isinstance(collision_from_name(name, 0.8), cls)

    def test_unknown(self):
        with pytest.raises(ValueError):
            collision_from_name("mrt", 0.8)
