"""Unit tests for the two-relaxation-time (TRT) collision operator."""

import numpy as np
import pytest

from repro.boundary import HalfwayBounceBack
from repro.core import BGKCollision, TRTCollision, collision_from_name, equilibrium, macroscopic
from repro.geometry import channel_2d
from repro.lattice import get_lattice
from repro.solver import STSolver
from repro.validation import poiseuille_profile


class TestOperator:
    def test_rates(self):
        op = TRTCollision(0.9, magic=3 / 16)
        assert op.tau_minus == pytest.approx(0.5 + (3 / 16) / 0.4)
        assert op.omega_minus == pytest.approx(1 / op.tau_minus)

    def test_reduces_to_bgk_when_rates_match(self, paper_lattice, rng):
        """Lambda = (tau - 1/2)^2 makes tau_minus = tau: TRT == BGK."""
        lat = paper_lattice
        tau = 0.9
        grid = (4,) * lat.d
        rho = 1 + 0.03 * rng.standard_normal(grid)
        u = 0.03 * rng.standard_normal((lat.d, *grid))
        f = equilibrium(lat, rho, u) * (1 + 0.02 * rng.standard_normal((lat.q, *grid)))
        trt = TRTCollision(tau, magic=(tau - 0.5) ** 2)
        bgk = BGKCollision(tau)
        assert np.allclose(trt(lat, f), bgk(lat, f), atol=1e-14)

    def test_conserves_mass_momentum(self, paper_lattice, rng):
        lat = paper_lattice
        grid = (4,) * lat.d
        rho = 1 + 0.03 * rng.standard_normal(grid)
        u = 0.03 * rng.standard_normal((lat.d, *grid))
        f = equilibrium(lat, rho, u) * (1 + 0.02 * rng.standard_normal((lat.q, *grid)))
        f_star = TRTCollision(0.7)(lat, f)
        r0, u0 = macroscopic(lat, f)
        r1, u1 = macroscopic(lat, f_star)
        assert np.allclose(r0, r1, atol=1e-13)
        assert np.allclose(r0 * u0, r1 * u1, atol=1e-13)

    def test_shear_viscosity_set_by_even_rate(self):
        """The Taylor-Green decay rate follows tau, not tau_minus."""
        from repro.geometry import periodic_box
        from repro.solver import STSolver
        from repro.validation import (kinetic_energy, taylor_green_decay_rate,
                                      taylor_green_fields)

        lat = get_lattice("D2Q9")
        shape, tau = (32, 32), 0.8
        nu = (tau - 0.5) / 3
        rho_i, u_i = taylor_green_fields(shape, 0.0, nu, 0.02)
        s = STSolver(lat, periodic_box(shape), tau, rho0=rho_i, u0=u_i,
                     collision=TRTCollision(tau, magic=0.25))
        e0 = kinetic_energy(*s.macroscopic())
        s.run(200)
        e1 = kinetic_energy(*s.macroscopic())
        rate = -np.log(e1 / e0) / 200
        assert rate == pytest.approx(taylor_green_decay_rate(shape, nu),
                                     rel=0.02)

    def test_validation(self):
        with pytest.raises(ValueError, match="magic"):
            TRTCollision(0.8, magic=0.0)
        with pytest.raises(ValueError, match="tau"):
            TRTCollision(0.5)

    def test_factory(self):
        assert isinstance(collision_from_name("trt", 0.8), TRTCollision)


class TestSlipReduction:
    def _poiseuille_error(self, collision, tau, shape=(6, 14), u_max=0.02):
        lat = get_lattice("D2Q9")
        dom = channel_2d(*shape, with_io=False)
        h = shape[1] - 2
        nu = lat.viscosity(tau)
        force = np.array([8 * nu * u_max / h ** 2, 0.0])
        s = STSolver(lat, dom, tau, boundaries=[HalfwayBounceBack()],
                     force=force, collision=collision)
        s.run_to_steady_state(tol=1e-13, check_interval=300,
                              max_steps=150_000)
        ana = poiseuille_profile(shape[1], u_max)
        return np.abs(s.velocity()[0][3, 1:-1] - ana[1:-1]).max() / u_max

    def test_trt_beats_bgk_at_large_tau(self):
        """BGK's bounce-back slip grows ~ (tau - 1/2)^2; TRT's magic
        parameter pins the odd rate and suppresses most of it (the
        residual uniform offset comes from the body-force wall closure,
        not the collision)."""
        tau = 3.0
        bgk = self._poiseuille_error(None, tau)           # default BGK
        trt = self._poiseuille_error(TRTCollision(tau), tau)
        assert trt < 0.4 * bgk

    def test_trt_degrades_slower_than_bgk(self):
        """Raising tau 1.0 -> 3.0 hurts TRT far less than BGK."""
        e1 = self._poiseuille_error(TRTCollision(1.0), 1.0)
        e2 = self._poiseuille_error(TRTCollision(3.0), 3.0)
        b1 = self._poiseuille_error(None, 1.0)
        b2 = self._poiseuille_error(None, 3.0)
        assert b2 / b1 > 10                # BGK slip blows up ~ (tau-1/2)^2
        assert e2 / e1 < 8                 # TRT stays within an order
        assert e2 < 0.2 * b2
