"""Unit tests for the performance models (roofline, footprint, flops, MFLUPS)."""


import pytest

from repro.gpu import MI100, V100
from repro.lattice import get_lattice
from repro.perf import (
    PerformanceModel,
    arithmetic_intensity,
    bandwidth_efficiency,
    bytes_per_flup,
    flops_per_node,
    fp64_efficiency,
    halo_factor,
    memory_reduction,
    mrp_flops_per_node,
    mrr_flops_per_node,
    roofline_mflups,
    st_flops_per_node,
    state_gib,
    values_per_update,
)
from repro.perf.footprint import circular_shift_state_bytes, max_problem_size


class TestRoofline:
    def test_table2_values(self):
        """Paper Table 2: 144/96 for D2Q9, 304/160 for D3Q19."""
        d2, d3 = get_lattice("D2Q9"), get_lattice("D3Q19")
        assert bytes_per_flup(d2, "ST") == 144
        assert bytes_per_flup(d2, "MR") == 96
        assert bytes_per_flup(d3, "ST") == 304
        assert bytes_per_flup(d3, "MR") == 160

    def test_table3_values(self):
        """Paper Table 3 roofline MFLUPS (Eq. 15)."""
        d2, d3 = get_lattice("D2Q9"), get_lattice("D3Q19")
        assert roofline_mflups(V100, d2, "ST") == pytest.approx(6250)
        assert roofline_mflups(V100, d3, "ST") == pytest.approx(2960, rel=0.01)
        assert roofline_mflups(V100, d2, "MR") == pytest.approx(9375)
        assert roofline_mflups(V100, d3, "MR") == pytest.approx(5625)
        assert roofline_mflups(MI100, d2, "ST") == pytest.approx(8533, rel=0.01)
        assert roofline_mflups(MI100, d3, "ST") == pytest.approx(4042, rel=0.01)
        assert roofline_mflups(MI100, d2, "MR") == pytest.approx(12800, rel=0.01)
        assert roofline_mflups(MI100, d3, "MR") == pytest.approx(7680, rel=0.01)

    def test_scheme_aliases(self):
        d2 = get_lattice("D2Q9")
        assert values_per_update(d2, "MR-P") == values_per_update(d2, "MR-R") == 12
        assert values_per_update(d2, "BGK") == 18
        with pytest.raises(ValueError):
            bytes_per_flup(d2, "MRT")

    def test_d3q27_extension(self):
        """Future work (Section 5): the MR advantage grows with Q."""
        q27 = get_lattice("D3Q27")
        assert bytes_per_flup(q27, "ST") == 2 * 27 * 8
        assert bytes_per_flup(q27, "MR") == 160            # M = 10 still
        assert memory_reduction(q27) > memory_reduction(get_lattice("D3Q19"))


class TestFootprint:
    def test_paper_gib_values(self):
        """Section 4.1: ~2 / 1.3 GB (D2Q9) and 4.2 / 2.23 GB (D3Q19) at 15M."""
        d2, d3 = get_lattice("D2Q9"), get_lattice("D3Q19")
        n = 15_000_000
        assert state_gib(d2, "ST", n) == pytest.approx(2.0, abs=0.05)
        assert state_gib(d2, "MR", n) == pytest.approx(1.3, abs=0.05)
        assert state_gib(d3, "ST", n) == pytest.approx(4.25, abs=0.05)
        assert state_gib(d3, "MR", n) == pytest.approx(2.23, abs=0.01)

    def test_reductions(self):
        assert memory_reduction(get_lattice("D2Q9")) == pytest.approx(1 / 3)
        assert memory_reduction(get_lattice("D3Q19")) == pytest.approx(0.4737, abs=1e-3)

    def test_circular_shift_halves_footprint(self):
        d3 = get_lattice("D3Q19")
        n = 1_000_000
        single = circular_shift_state_bytes(d3, n, margin_nodes=2 * 128 * 128)
        from repro.perf import state_bytes

        assert single < 0.55 * state_bytes(d3, "MR", n)

    def test_max_problem_size(self):
        d3 = get_lattice("D3Q19")
        n_st = max_problem_size(d3, "ST", V100.memory_bytes())
        n_mr = max_problem_size(d3, "MR", V100.memory_bytes())
        assert n_mr / n_st == pytest.approx(19 / 10, rel=1e-6)


class TestFlops:
    def test_halo_factor(self):
        assert halo_factor((32,)) == pytest.approx(34 / 32)
        assert halo_factor((8, 8)) == pytest.approx(100 / 64)

    def test_ordering(self, paper_lattice):
        tile = (16,) if paper_lattice.d == 2 else (8, 8)
        st = st_flops_per_node(paper_lattice)
        p = mrp_flops_per_node(paper_lattice, tile)
        r = mrr_flops_per_node(paper_lattice, tile)
        assert st < p < r

    def test_paper_ai_claim_d2q9(self):
        """Section 4.2: MR-R arithmetic intensity ~60% above MR-P."""
        d2 = get_lattice("D2Q9")
        ratio = (arithmetic_intensity(d2, "MR-R", (16,))
                 / arithmetic_intensity(d2, "MR-P", (16,)))
        assert 1.3 < ratio < 1.8

    def test_3d_much_heavier_than_2d(self):
        """The flop growth that makes MR-R compute-bound only in 3D."""
        d2, d3 = get_lattice("D2Q9"), get_lattice("D3Q19")
        ratio = mrr_flops_per_node(d3, (8, 8)) / mrr_flops_per_node(d2, (16,))
        assert ratio > 3.0

    def test_dispatch(self):
        d2 = get_lattice("D2Q9")
        assert flops_per_node(d2, "ST") == st_flops_per_node(d2)
        assert flops_per_node(d2, "MR-P", (16,)) == mrp_flops_per_node(d2, (16,))
        with pytest.raises(ValueError):
            flops_per_node(d2, "MRT")

    def test_no_tile_means_no_halo(self):
        d2 = get_lattice("D2Q9")
        assert mrp_flops_per_node(d2) < mrp_flops_per_node(d2, (16,))


class TestCalibration:
    def test_efficiencies_in_range(self):
        for dev in (V100, MI100):
            for scheme in ("ST", "MR"):
                for nd in (2, 3):
                    e = bandwidth_efficiency(dev, scheme, nd)
                    assert 0.3 < e < 0.95
            assert 0.1 < fp64_efficiency(dev) < 0.7

    def test_st_beats_mr_in_efficiency(self):
        """The paper's core observation: ST sustains a larger fraction of
        peak bandwidth than MR, on both devices and both dimensions."""
        for dev in (V100, MI100):
            for nd in (2, 3):
                assert (bandwidth_efficiency(dev, "ST", nd)
                        > bandwidth_efficiency(dev, "MR", nd))

    def test_mi100_mr3d_is_the_outlier(self):
        """'Only 42% of expected performance' — the AMD 3D MR anomaly."""
        assert bandwidth_efficiency(MI100, "MR", 3) < 0.45

    def test_unknown_device(self):
        from dataclasses import replace

        ghost = replace(V100, name="H100")
        with pytest.raises(ValueError):
            bandwidth_efficiency(ghost, "ST", 2)
        with pytest.raises(ValueError):
            fp64_efficiency(ghost)

    def test_bad_ndim(self):
        with pytest.raises(ValueError):
            bandwidth_efficiency(V100, "ST", 1)


class TestPerformanceModel:
    def test_plateau_values_match_paper(self):
        """The 12 headline MFLUPS numbers (Sections 4.2-4.3), within 10%."""
        targets = {
            ("V100", "D2Q9", "ST"): 5300, ("V100", "D2Q9", "MR-P"): 7000,
            ("MI100", "D2Q9", "ST"): 6200, ("MI100", "D2Q9", "MR-P"): 8600,
            ("V100", "D3Q19", "ST"): 2600, ("V100", "D3Q19", "MR-P"): 3800,
            ("V100", "D3Q19", "MR-R"): 3000,
            ("MI100", "D3Q19", "ST"): 2800, ("MI100", "D3Q19", "MR-P"): 3200,
            ("MI100", "D3Q19", "MR-R"): 2500,
        }
        for (dev_name, lname, scheme), target in targets.items():
            dev = V100 if dev_name == "V100" else MI100
            lat = get_lattice(lname)
            shape = (4096, 4096) if lat.d == 2 else (256, 256, 256)
            tile = None if scheme == "ST" else ((16,) if lat.d == 2 else (8, 8))
            pred = PerformanceModel(dev).predict_shape(
                lat, scheme, shape, tile_cross=tile,
                w_t=8 if (tile and lat.d == 2) else 1,
            )
            assert pred.mflups == pytest.approx(target, rel=0.10), \
                (dev_name, lname, scheme)

    def test_mrr_compute_bound_only_in_3d(self):
        pm = PerformanceModel(V100)
        d2, d3 = get_lattice("D2Q9"), get_lattice("D3Q19")
        p2 = pm.predict_shape(d2, "MR-R", (4096, 4096), tile_cross=(16,), w_t=8)
        p3 = pm.predict_shape(d3, "MR-R", (256, 256, 256), tile_cross=(8, 8))
        assert p2.bound == "memory"
        assert p3.bound == "compute"

    def test_small_problems_underperform(self):
        pm = PerformanceModel(V100)
        d2 = get_lattice("D2Q9")
        small = pm.predict_shape(d2, "ST", (64, 64))
        large = pm.predict_shape(d2, "ST", (4096, 4096))
        assert small.mflups < 0.5 * large.mflups

    def test_effective_bandwidth_consistency(self):
        pm = PerformanceModel(V100)
        d2 = get_lattice("D2Q9")
        p = pm.predict_shape(d2, "ST", (4096, 4096))
        assert p.effective_bandwidth_gbs == pytest.approx(
            p.mflups * 1e6 * p.bytes_per_node / 1e9
        )

    def test_custom_bytes_per_node(self):
        pm = PerformanceModel(V100)
        d2 = get_lattice("D2Q9")
        a = pm.predict(d2, "ST", 10 ** 6, bytes_per_node=144)
        b = pm.predict(d2, "ST", 10 ** 6, bytes_per_node=288)
        # Near-exact 2x, up to the fixed launch overhead.
        assert a.mflups == pytest.approx(2 * b.mflups, rel=0.05)
