"""Tests for the profiling harness, GPU telemetry hooks and CLI wiring."""

import json

import pytest

from repro.cli import main
from repro.gpu import MRKernel, STKernel, KernelProblem, MemoryTracker, V100
from repro.obs import Telemetry, format_profile, profile_scheme


class TestKernelTelemetry:
    def _problem(self):
        from repro.lattice import get_lattice

        return KernelProblem(get_lattice("D2Q9"), (12, 10), 0.8)

    def test_st_kernel_publishes_launch(self):
        tel = Telemetry()
        k = STKernel(self._problem(), V100, telemetry=tel)
        stats = k.step()
        assert tel.counters["gpu.launches"] == 1
        assert tel.counters["gpu.nodes"] == stats.n_nodes
        assert tel.counters["gpu.bytes.sector"] == stats.traffic.sector_bytes_total
        assert tel.phases["gpu.step"].calls == 1

    def test_mr_kernel_publishes_launch(self):
        tel = Telemetry()
        k = MRKernel(self._problem(), V100, scheme="MR-P", telemetry=tel)
        k.step()
        k.step()
        assert tel.counters["gpu.launches"] == 2
        assert tel.counters["gpu.launches.MR-P/D2Q9"] == 2
        assert tel.effective_gbs() > 0

    def test_kernel_without_telemetry_unchanged(self):
        tr = MemoryTracker()
        k = STKernel(self._problem(), V100, tracker=tr)
        stats = k.step()
        assert stats.traffic.total_bytes > 0


class TestProfileScheme:
    def test_profile_mrp(self):
        result = profile_scheme("MR-P", "D2Q9", shape=(24, 14), steps=5)
        assert result["scheme"] == "MR-P"
        paths = {p["phase"] for p in result["phases"]}
        assert {"step", "step/collide", "step/stream"} <= paths
        assert result["host_mlups"] > 0
        t = result["traffic"]
        assert t is not None
        assert t["dram_bytes_per_node"] > 0
        assert t["effective_host_gbs"] == pytest.approx(
            t["dram_bytes_per_node"] * result["host_mlups"] * 1e6 / 1e9)

    def test_profile_aa_without_traffic(self):
        result = profile_scheme("AA", "D2Q9", shape=(16, 16), steps=4)
        assert result["traffic"] is None
        assert result["host_mlups"] > 0

    def test_format_profile_mentions_units(self):
        result = profile_scheme("ST", "D2Q9", shape=(24, 14), steps=5)
        text = format_profile(result)
        assert "MLUPS" in text and "GB/s" in text
        assert "B/node" in text
        assert "phase" in text

    def test_result_json_serializable(self):
        json.dumps(profile_scheme("MR-R", "D2Q9", shape=(20, 12), steps=3))


class TestCLI:
    def test_profile_command(self, capsys):
        rc = main(["profile", "--scheme", "MR-P", "--lattice", "D2Q9",
                   "--shape", "24,14", "--steps", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "MLUPS" in out and "GB/s" in out
        assert "step/collide" in out

    def test_profile_json_dump(self, capsys, tmp_path):
        path = tmp_path / "prof.json"
        rc = main(["profile", "--scheme", "ST", "--shape", "20,12",
                   "--steps", "4", "--json", str(path)])
        assert rc == 0
        data = json.loads(path.read_text())
        assert data[0]["scheme"] == "ST"

    def test_run_trace_and_metrics(self, capsys, tmp_path):
        trace = tmp_path / "out.json"
        metrics = tmp_path / "m.jsonl"
        rc = main(["run", "--scheme", "MR-P", "--shape", "20,12",
                   "--steps", "10", "--report-interval", "5",
                   "--trace", str(trace), "--metrics", str(metrics)])
        assert rc == 0
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"], "trace must contain phase spans"
        assert all(ev["ph"] == "X" for ev in doc["traceEvents"])
        records = [json.loads(ln) for ln in metrics.read_text().splitlines()]
        assert any("summary" in r for r in records)
        assert any(r.get("step") == 10 for r in records)

    def test_run_manifest_flag(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main(["run", "--scheme", "ST", "--shape", "16,10",
                   "--steps", "5", "--report-interval", "5",
                   "--manifest", str(tmp_path / "m.json")])
        assert rc == 0
        m = json.loads((tmp_path / "m.json").read_text())
        assert m["scheme"] == "ST" and m["shape"] == [16, 10]

    def test_run_watchdog_flag_healthy(self, capsys):
        rc = main(["run", "--scheme", "MR-P", "--shape", "16,10",
                   "--steps", "10", "--report-interval", "5",
                   "--watchdog", "5"])
        assert rc == 0

    def test_telemetry_off_by_default_golden(self):
        """Plain `run` must not attach telemetry (numerics & speed path)."""
        from repro.solver import channel_problem
        from repro.obs import NULL_TELEMETRY

        s = channel_problem("MR-P", "D2Q9", (16, 10))
        assert s.telemetry is NULL_TELEMETRY


class TestBenchPublish:
    def test_publish_measurement_gauges(self):
        from repro.bench.measure import TrafficMeasurement, publish_measurement

        meas = TrafficMeasurement(
            scheme="MR-P", lattice="D2Q9", device="V100", shape=(4, 4),
            dram_bytes_per_node=96.0, dram_read_per_node=48.0,
            dram_write_per_node=48.0, logical_bytes_per_node=101.0,
            n_nodes=16)
        tel = Telemetry()
        publish_measurement(tel, meas)
        assert tel.gauges["traffic.MR-P.D2Q9.dram_bytes_per_node"] == 96.0
        publish_measurement(__import__("repro.obs", fromlist=["NULL_TELEMETRY"]
                                       ).NULL_TELEMETRY, meas)  # no-op


class TestBackendComparison:
    def test_compare_backends_rows(self):
        from repro.obs import compare_backends, format_backend_comparison

        result = compare_backends("MR-P", "D2Q9", shape=(20, 14), steps=4)
        names = [row["backend"] for row in result["backends"]]
        assert names[0] == "reference" and "fused" in names
        rows = {row["backend"]: row for row in result["backends"]}
        assert rows["fused"]["max_abs_diff"] < 1e-13
        assert rows["reference"]["max_abs_diff"] == 0.0
        assert all(row["mlups"] > 0 for row in result["backends"])
        # Each backend carries its own per-phase telemetry breakdown.
        assert "step" in rows["fused"]["phases"]
        text = format_backend_comparison(result)
        assert "speedup" in text and "fused" in text
        json.dumps(result["backends"][0]["phases"])   # serializable

    def test_profile_accel_flag(self, capsys):
        rc = main(["profile", "--scheme", "MR-P", "--lattice", "D2Q9",
                   "--shape", "24,14", "--steps", "4", "--accel", "fused"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "backend = fused" in out

    def test_profile_compare_mode(self, capsys):
        rc = main(["profile", "--shape", "20,12", "--steps", "3",
                   "--accel", "compare"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_compare_backends_cylinder_problem(self):
        from repro.obs import compare_backends

        result = compare_backends("MR-R", "D2Q9", shape=(48, 26), steps=4,
                                  problem="cylinder")
        rows = {row["backend"]: row for row in result["backends"]}
        assert "sparse" in rows
        assert rows["sparse"]["max_abs_diff"] < 1e-13
        assert rows["fused"]["max_abs_diff"] < 1e-13

    def test_profile_compare_cylinder_cli(self, capsys):
        """CLI smoke test: backend comparison on the cylinder problem."""
        rc = main(["profile", "--scheme", "MR-P", "--lattice", "D2Q9",
                   "--shape", "32,18", "--steps", "3", "--accel", "compare",
                   "--problem", "cylinder"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "sparse" in out

    def test_run_accel_flag(self, capsys):
        rc = main(["run", "--scheme", "MR-P", "--shape", "20,12",
                   "--steps", "6", "--accel", "fused"])
        assert rc == 0
        assert "accel = fused" in capsys.readouterr().out

    def test_run_distributed_rejects_numba(self, capsys):
        rc = main(["run", "--scheme", "ST", "--shape", "24,10", "--steps", "2",
                   "--ranks", "2", "--accel", "numba"])
        assert rc == 2
        assert capsys.readouterr().err.startswith("ERROR:")
