"""Unit tests for the lockstep ensemble runner and the sweep machinery.

Covers the enrolment contract (capability handshake and compatibility
rejections), zero-copy member packing (state rebinding, observability,
``set_force`` liveness), lockstep ``run`` semantics (callbacks, flush,
time sync, telemetry), MLUPS attribution, and the ``mrlbm sweep`` engine
(grid expansion, fingerprint dedupe, batch packing, execution with
manifests and a summary).
"""

import json

import numpy as np
import pytest

from repro.ensemble import (
    EnsembleRunner,
    SWEEP_PROBLEMS,
    build_sweep_member,
    expand_sweep,
    pack_batches,
    run_sweep,
)
from repro.lattice import get_lattice
from repro.obs import Telemetry
from repro.parallel.runtime import RunSpec
from repro.solver import (
    MRPSolver,
    PowerLawMRPSolver,
    forced_channel_problem,
    periodic_problem,
)
from repro.validation import taylor_green_fields


def tg_member(scheme="MR-P", shape=(12, 10), tau=0.8, u_max=0.04,
              backend="fused"):
    lat = get_lattice("D2Q9")
    rho0, u0 = taylor_green_fields(shape, 0.0, lat.viscosity(tau), u_max)
    return periodic_problem(scheme, lat, shape, tau, rho0=rho0, u0=u0,
                            backend=backend)


class TestEnrolment:
    def test_needs_members(self):
        with pytest.raises(ValueError, match="at least one"):
            EnsembleRunner([])

    def test_rejects_duplicate_member(self):
        m = tg_member()
        with pytest.raises(ValueError, match="distinct"):
            EnsembleRunner([m, m])

    def test_rejects_uncertified_solver(self):
        """PowerLawMRPSolver overrides physics and must not batch."""
        from repro.geometry import periodic_box

        lat = get_lattice("D2Q9")
        m = PowerLawMRPSolver(lat, periodic_box((10, 8)), 0.8,
                              consistency=0.05)
        with pytest.raises(ValueError, match="batched"):
            EnsembleRunner([m])

    def test_rejects_mixed_schemes(self):
        with pytest.raises(ValueError, match="share one scheme"):
            EnsembleRunner([tg_member("MR-P"), tg_member("MR-R")])

    def test_rejects_mixed_shapes(self):
        with pytest.raises(ValueError, match="share one grid shape"):
            EnsembleRunner([tg_member(shape=(12, 10)),
                            tg_member(shape=(10, 12))])

    def test_rejects_aa_backend_members(self):
        with pytest.raises(ValueError, match="'aa' backend"):
            EnsembleRunner([tg_member("ST", backend="aa"),
                            tg_member("ST", backend="aa")])

    def test_rejects_time_skew(self):
        a, b = tg_member(), tg_member()
        a.run(2)
        with pytest.raises(ValueError, match="agree on time"):
            EnsembleRunner([a, b])

    def test_rejects_mixed_forcing(self):
        forced = periodic_problem("MR-P", "D2Q9", (12, 10), tau=0.8,
                                  force=np.array([1e-5, 0.0]),
                                  backend="fused")
        with pytest.raises(ValueError, match="all-or-none"):
            EnsembleRunner([tg_member(), forced])

    def test_rejects_tau_bulk_member(self):
        lat = get_lattice("D2Q9")
        from repro.geometry import periodic_box

        m = MRPSolver(lat, periodic_box((10, 8)), tau=0.8, tau_bulk=0.9,
                      backend="fused")
        with pytest.raises(ValueError, match="tau_bulk"):
            EnsembleRunner([m, tg_member()])


class TestPackingAndRun:
    def test_members_are_live_views(self):
        """Member state is rebound to batch views, not copied away."""
        members = [tg_member(tau=t) for t in (0.7, 0.9)]
        runner = EnsembleRunner(members)
        for k, m in enumerate(members):
            assert m.m.base is runner._m
            assert np.shares_memory(m.m, runner._m[k])
        runner.run(3)
        for m in members:
            rho, u = m.macroscopic()      # reads the live batched state
            assert np.isfinite(rho).all() and np.isfinite(u).all()
            assert m.time == 3

    def test_set_force_drives_the_batch(self):
        """After enrolment, member.set_force still reaches the kernel."""
        members = [forced_channel_problem("ST", "D2Q9", (12, 8), tau=0.8,
                                          u_max=0.04, backend="fused")
                   for _ in range(2)]
        runner = EnsembleRunner(members)
        members[1].set_force(np.array([2e-5, 0.0]))
        assert np.shares_memory(members[1].force, runner._force[1])
        assert runner._force[1, 0].max() == pytest.approx(2e-5)

    def test_member_callbacks_and_flush(self):
        members = [tg_member(tau=t) for t in (0.7, 0.9, 1.1)]
        calls = []

        class Monitor:
            def __init__(self, k):
                self.k = k
                self.flushed = False

            def __call__(self, solver):
                calls.append((self.k, solver.time))

            def flush(self, solver):
                self.flushed = True

        monitors = [Monitor(0), None, Monitor(2)]
        EnsembleRunner(members).run(4, member_callbacks=monitors,
                                    callback_interval=2)
        assert calls == [(0, 2), (2, 2), (0, 4), (2, 4)]
        assert monitors[0].flushed and monitors[2].flushed

    def test_callback_count_validated(self):
        members = [tg_member(tau=t) for t in (0.7, 0.9)]
        with pytest.raises(ValueError, match="member callbacks"):
            EnsembleRunner(members).run(2, member_callbacks=[None])

    def test_telemetry_counts_steps(self):
        members = [tg_member(tau=t) for t in (0.7, 0.9)]
        tel = Telemetry()
        EnsembleRunner(members).attach_telemetry(tel).run(3)
        assert tel.counters["steps"] == 3
        assert tel.phase_total("step") > 0.0

    def test_mlups_attribution_sums_to_aggregate(self):
        members = [tg_member(tau=t) for t in (0.7, 0.9, 1.1)]
        runner = EnsembleRunner(members)
        per = runner.member_mlups(0.5, 10)
        assert sum(per) == pytest.approx(runner.aggregate_mlups(0.5, 10))
        assert all(p > 0 for p in per)
        assert runner.aggregate_mlups(0.0, 10) == 0.0


class TestSweepExpansion:
    def test_grid_cross_product(self):
        specs, dropped = expand_sweep(
            "taylor-green", ["MR-P", "ST"], ["D2Q9"], [(16, 16), (24, 24)],
            [0.7, 0.9], u_maxes=[0.04])
        assert len(specs) == 8 and dropped == 0
        assert all(s.kind == "taylor-green" for s in specs)
        assert all(s.options["u_max"] == 0.04 for s in specs)

    def test_fingerprint_dedupe(self):
        specs, dropped = expand_sweep(
            "taylor-green", ["MR-P"], ["D2Q9"], [(16, 16)],
            [0.8, 0.8, 0.8])
        assert len(specs) == 1 and dropped == 2

    def test_unknown_problem_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep problem"):
            expand_sweep("cavity", ["ST"], ["D2Q9"], [(8, 8)], [0.8])
        assert "taylor-green" in SWEEP_PROBLEMS

    def test_taylor_green_needs_2d(self):
        spec = RunSpec(kind="taylor-green", scheme="MR-P", lattice="D3Q19",
                       shape=(8, 8, 8), n_ranks=1, tau=0.8)
        with pytest.raises(ValueError, match="2D"):
            build_sweep_member(spec)

    def test_pack_batches_groups_and_chunks(self):
        specs, _ = expand_sweep("taylor-green", ["MR-P"], ["D2Q9"],
                                [(16, 16), (24, 24)],
                                [0.6, 0.7, 0.8, 0.9, 1.0])
        batches = pack_batches(specs, max_batch=3)
        # 2 shapes x 5 taus -> per shape: chunks of 3 + 2.
        assert [len(b) for b in batches] == [3, 2, 3, 2]
        for batch in batches:
            keys = {(s.kind, s.scheme, s.lattice, s.shape) for s in batch}
            assert len(keys) == 1

    def test_pack_batches_validates_max_batch(self):
        with pytest.raises(ValueError, match="max_batch"):
            pack_batches([], max_batch=0)


class TestRunSweep:
    def test_sweep_executes_and_writes_artifacts(self, tmp_path):
        specs, _ = expand_sweep("taylor-green", ["MR-P"], ["D2Q9"],
                                [(16, 16)], [0.7, 0.9, 1.1])
        lines = []
        result = run_sweep(specs, steps=4, max_batch=8, out_dir=tmp_path,
                           progress=lines.append)
        assert len(result.members) == 3
        assert len(result.batches) == 1 and result.batches[0]["size"] == 3
        assert result.batches[0]["batched"] is True
        assert lines and "MLUPS" in lines[0]
        summary = json.loads((tmp_path / "sweep_summary.json").read_text())
        assert summary["n_members"] == 3
        for row in result.members:
            path = tmp_path / f"member-{row['fingerprint']}.json"
            manifest = json.loads(path.read_text())
            assert manifest["extra"]["fingerprint"] == row["fingerprint"]
            assert row["mlups"] > 0

    def test_sweep_parity_with_solo_runs(self):
        """Sweep members end bit-comparable to their independent runs."""
        specs, _ = expand_sweep("forced-channel", ["MR-P"], ["D2Q9"],
                                [(16, 10)], [0.7, 1.0])
        run_sweep_members = [build_sweep_member(s) for s in specs]
        runner = EnsembleRunner(run_sweep_members)
        runner.run(6)
        for spec, member in zip(specs, run_sweep_members):
            solo = build_sweep_member(spec)
            solo.run(6)
            rho_s, u_s = solo.macroscopic()
            rho_m, u_m = member.macroscopic()
            assert float(np.abs(rho_s - rho_m).max()) <= 1e-15
            assert float(np.abs(u_s - u_m).max()) <= 1e-15

    def test_singleton_chunk_runs_directly(self, tmp_path):
        specs, _ = expand_sweep("taylor-green", ["MR-P"], ["D2Q9"],
                                [(16, 16)], [0.8])
        result = run_sweep(specs, steps=3, out_dir=tmp_path)
        assert result.batches[0]["size"] == 1
        assert result.batches[0]["batched"] is False
        assert result.members[0]["steps"] == 3

    def test_defensive_dedupe(self):
        spec = expand_sweep("taylor-green", ["MR-P"], ["D2Q9"],
                            [(16, 16)], [0.8])[0][0]
        twin = RunSpec(kind=spec.kind, scheme=spec.scheme,
                       lattice=spec.lattice, shape=spec.shape, n_ranks=1,
                       tau=spec.tau, options=dict(spec.options))
        result = run_sweep([spec, twin], steps=2)
        assert result.duplicates_dropped == 1
        assert len(result.members) == 1
