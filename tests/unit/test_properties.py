"""Property-based tests over seeded random states.

Instead of hand-picked fixtures, these tests draw many random (but
reproducibly seeded) physical states and assert the algebraic properties
the schemes are built on:

* the M -> f -> M moment round trip is the identity (the projection and
  reconstruction matrices of paper Eqs. 3/11 are mutual inverses on
  moment space);
* the Eq. 4 equilibrium carries exactly the density and momentum it was
  built from, for any subsonic velocity (|u| < 0.3 c_s);
* projective and recursive regularization are idempotent projections and
  conserve the macroscopic state;
* push streaming on a periodic domain is a permutation, undone exactly by
  the inverse displacement — and the table-driven gather used by the
  accel backends is the same permutation;
* every available accel backend reproduces the reference trajectory and
  its conservation laws on random initial conditions.

Each property is exercised on both paper lattices (D2Q9, D3Q19) and
several seeds; tolerances are machine precision (1e-12 absolute or
tighter).
"""

import numpy as np
import pytest

from repro.accel import FusedMRCore, available_backends, stream_gather
from repro.core.equilibrium import equilibrium
from repro.core.forcing import guo_source
from repro.core.moments import f_from_moments, macroscopic, moments_from_f
from repro.core.regularization import (
    hermite_delta_higher_order,
    hermite_delta_second_order,
    pi_neq_cols_from_f,
    recursive_a3_neq_cols,
    recursive_a4_neq_cols,
    regularize_projective,
)
from repro.core.streaming import stream_push
from repro.lattice import get_lattice
from repro.obs.watchdog import SOUND_SPEED
from repro.solver import periodic_problem

LATTICES = ["D2Q9", "D3Q19"]
SEEDS = [0, 1, 2, 3]
TOL = 1e-12


def _grid(lat):
    """A small odd-sized grid matching the lattice dimensionality."""
    return (7, 5) if lat.d == 2 else (6, 5, 4)


def _random_state(lat, seed, grid=None, mach=0.15, noise=0.02):
    """A random near-equilibrium state: (rho, u, f) with |u| < mach * c_s.

    ``f`` is the equilibrium of the random macroscopic fields plus a small
    non-equilibrium perturbation, i.e. the kind of state a running solver
    actually produces.
    """
    rng = np.random.default_rng(seed)
    grid = grid or _grid(lat)
    rho = 1.0 + 0.05 * rng.standard_normal(grid)
    u = rng.standard_normal((lat.d, *grid))
    speed = np.sqrt((u ** 2).sum(axis=0))
    u *= mach * SOUND_SPEED / speed.max()
    f = equilibrium(lat, rho, u)
    f += noise * f * rng.standard_normal(f.shape)
    return rho, u, f


def regularize_recursive(lat, f):
    """Recursive (Malaspinas) regularization of ``f`` — the MR-R collision's
    reconstruction, composed from the package's own building blocks."""
    rho, u = macroscopic(lat, f)
    feq = equilibrium(lat, rho, u)
    pi_neq = pi_neq_cols_from_f(lat, f, rho, u)
    a3 = recursive_a3_neq_cols(lat, u, pi_neq)
    a4 = recursive_a4_neq_cols(lat, u, pi_neq)
    return (feq + hermite_delta_second_order(lat, pi_neq)
            + hermite_delta_higher_order(lat, a3, a4))


@pytest.mark.parametrize("lattice", LATTICES)
@pytest.mark.parametrize("seed", SEEDS)
class TestMomentRoundTrip:
    """moment_matrix and reconstruction_matrix are mutual inverses on M."""

    def test_m_to_f_to_m_identity(self, lattice, seed):
        lat = get_lattice(lattice)
        rng = np.random.default_rng(seed)
        grid = _grid(lat)
        m = rng.standard_normal((lat.moment_matrix.shape[0], *grid))
        m[0] += 2.0  # keep density-like slot away from zero
        back = moments_from_f(lat, f_from_moments(lat, m))
        assert np.abs(back - m).max() < TOL

    def test_f_state_roundtrip_preserves_macroscopic(self, lattice, seed):
        lat = get_lattice(lattice)
        rho, u, f = _random_state(lat, seed)
        f2 = f_from_moments(lat, moments_from_f(lat, f))
        rho2, u2 = macroscopic(lat, f2)
        rho1, u1 = macroscopic(lat, f)
        assert np.abs(rho2 - rho1).max() < TOL
        assert np.abs(u2 - u1).max() < TOL


@pytest.mark.parametrize("lattice", LATTICES)
@pytest.mark.parametrize("seed", SEEDS)
class TestEquilibriumConservation:
    """Eq. 4 equilibrium reproduces its own (rho, u) for any |u| < 0.3 c_s."""

    def test_moments_of_equilibrium(self, lattice, seed):
        lat = get_lattice(lattice)
        rng = np.random.default_rng(seed)
        grid = _grid(lat)
        rho = 1.0 + 0.1 * rng.standard_normal(grid)
        u = rng.standard_normal((lat.d, *grid))
        u *= 0.3 * SOUND_SPEED / np.sqrt((u ** 2).sum(axis=0)).max()
        feq = equilibrium(lat, rho, u)
        rho_eq, u_eq = macroscopic(lat, feq)
        assert np.abs(rho_eq - rho).max() < TOL
        assert np.abs(u_eq - u).max() < TOL

    def test_equilibrium_is_regularization_fixed_point(self, lattice, seed):
        lat = get_lattice(lattice)
        rng = np.random.default_rng(seed)
        grid = _grid(lat)
        rho = 1.0 + 0.05 * rng.standard_normal(grid)
        u = rng.standard_normal((lat.d, *grid))
        u *= 0.1 * SOUND_SPEED / np.sqrt((u ** 2).sum(axis=0)).max()
        feq = equilibrium(lat, rho, u)
        assert np.abs(regularize_projective(lat, feq) - feq).max() < TOL
        assert np.abs(regularize_recursive(lat, feq) - feq).max() < TOL


@pytest.mark.parametrize("lattice", LATTICES)
@pytest.mark.parametrize("seed", SEEDS)
class TestRegularizationIdempotence:
    """Both regularizations are projections: R(R(f)) = R(f)."""

    def test_projective_idempotent(self, lattice, seed):
        lat = get_lattice(lattice)
        _, _, f = _random_state(lat, seed)
        once = regularize_projective(lat, f)
        twice = regularize_projective(lat, once)
        assert np.abs(twice - once).max() < TOL

    def test_recursive_idempotent(self, lattice, seed):
        lat = get_lattice(lattice)
        _, _, f = _random_state(lat, seed)
        once = regularize_recursive(lat, f)
        twice = regularize_recursive(lat, once)
        assert np.abs(twice - once).max() < TOL

    def test_regularization_conserves_macroscopic(self, lattice, seed):
        lat = get_lattice(lattice)
        rho, u, f = _random_state(lat, seed)
        rho0, u0 = macroscopic(lat, f)
        for reg in (regularize_projective, regularize_recursive):
            rho1, u1 = macroscopic(lat, reg(lat, f))
            assert np.abs(rho1 - rho0).max() < TOL
            assert np.abs(u1 - u0).max() < TOL


@pytest.mark.parametrize("lattice", LATTICES)
@pytest.mark.parametrize("seed", SEEDS)
class TestStreamingInverse:
    """Push streaming is a permutation; the inverse displacement undoes it."""

    @staticmethod
    def _unstream(lat, f):
        """Roll every component back by -c_i (the exact inverse)."""
        grid_axes = tuple(range(f.ndim - 1))
        out = np.empty_like(f)
        for i in range(lat.q):
            out[i] = np.roll(f[i], shift=tuple(-lat.c[i]), axis=grid_axes)
        return out

    def test_stream_then_inverse_is_identity(self, lattice, seed):
        lat = get_lattice(lattice)
        _, _, f = _random_state(lat, seed)
        streamed = stream_push(lat, f)
        assert np.array_equal(self._unstream(lat, streamed), f)

    def test_stream_is_a_permutation(self, lattice, seed):
        lat = get_lattice(lattice)
        _, _, f = _random_state(lat, seed)
        streamed = stream_push(lat, f)
        for i in range(lat.q):
            assert np.array_equal(np.sort(streamed[i].ravel()),
                                  np.sort(f[i].ravel()))

    def test_gather_matches_roll_streaming(self, lattice, seed):
        lat = get_lattice(lattice)
        _, _, f = _random_state(lat, seed)
        assert np.array_equal(stream_gather(lat, f), stream_push(lat, f))


@pytest.mark.parametrize("lattice", LATTICES)
@pytest.mark.parametrize("seed", SEEDS)
class TestForceProjection:
    """Algebraic content of the Guo forcing used by every forced path.

    The fused kernels fold the source into collision rather than calling
    :func:`guo_source`, so these properties pin down the shared contract:
    the source carries no mass, ``(1 - 1/(2 tau)) F`` momentum, and the
    symmetrized ``(1 - 1/(2 tau)) (u_a F_b + u_b F_a)`` second moment.
    """

    TAU = 0.8

    def _u_and_force(self, lat, seed):
        rng = np.random.default_rng(seed)
        grid = _grid(lat)
        u = 0.05 * rng.standard_normal((lat.d, *grid))
        force = 1e-4 * rng.standard_normal((lat.d, *grid))
        return u, force

    def test_guo_source_moment_content(self, lattice, seed):
        lat = get_lattice(lattice)
        u, force = self._u_and_force(lat, seed)
        src = guo_source(lat, u, force, self.TAU)
        pref = 1.0 - 0.5 / self.TAU
        c = lat.c.astype(np.float64)

        mass = src.sum(axis=0)
        mom = np.einsum("qa,q...->a...", c, src)
        second = np.einsum("qa,qb,q...->ab...", c, c, src)
        expected = pref * (np.einsum("a...,b...->ab...", u, force)
                           + np.einsum("b...,a...->ab...", u, force))

        assert np.abs(mass).max() < TOL
        assert np.abs(mom - pref * force).max() < TOL
        assert np.abs(second - expected).max() < TOL

    def test_guo_source_raw_is_unscaled(self, lattice, seed):
        """``tau=None`` strips exactly the BGK ``1 - 1/(2 tau)`` prefactor."""
        lat = get_lattice(lattice)
        u, force = self._u_and_force(lat, seed)
        scaled = guo_source(lat, u, force, self.TAU)
        raw = guo_source(lat, u, force, None)
        pref = 1.0 - 0.5 / self.TAU
        assert np.abs(scaled - pref * raw).max() < TOL

    @pytest.mark.parametrize("scheme", ["ST", "MR-P", "MR-R"])
    def test_forced_step_adds_exactly_f_per_node(self, lattice, seed, scheme):
        """Guo forcing injects momentum ``F`` per node per step, no mass."""
        lat = get_lattice(lattice)
        grid = _grid(lat)
        rng = np.random.default_rng(seed)
        force = np.zeros(lat.d)
        force[0] = 2.5e-5
        solver = periodic_problem(
            scheme, lattice, grid, self.TAU,
            rho0=1.0 + 0.02 * rng.standard_normal(grid),
            u0=0.02 * rng.standard_normal((lat.d, *grid)),
            force=force)
        n_nodes = float(np.prod(grid))

        def totals():
            rho, u = solver.macroscopic()
            return rho.sum(), (rho * u).sum(axis=tuple(range(1, u.ndim)))

        mass0, mom0 = totals()
        steps = 3
        solver.run(steps)
        mass1, mom1 = totals()
        assert abs(mass1 - mass0) < TOL * n_nodes
        expected = mom0 + steps * n_nodes * force
        assert np.abs(mom1 - expected).max() < TOL * n_nodes

    def test_uniform_tau_field_equals_scalar_tau(self, lattice, seed):
        """A constant ``tau_field`` reproduces the scalar-tau MR-P kernel."""
        lat = get_lattice(lattice)
        grid = _grid(lat)
        _, _, f = _random_state(lat, seed, grid=grid)
        m1 = moments_from_f(lat, f)
        m2 = m1.copy()
        core_a = FusedMRCore(lat, grid, self.TAU, scheme="MR-P")
        core_b = FusedMRCore(lat, grid, self.TAU, scheme="MR-P")
        tau_field = np.full(grid, self.TAU)
        for _ in range(3):
            core_a.step(m1, [], None)
            core_b.step(m2, [], None, tau_field=tau_field)
        assert np.abs(m1 - m2).max() < TOL


@pytest.mark.parametrize("backend", available_backends())
@pytest.mark.parametrize("scheme", ["ST", "MR-P", "MR-R"])
@pytest.mark.parametrize("lattice", LATTICES)
class TestBackendProperties:
    """Every accel backend preserves the reference physics on random ICs."""

    SEED, STEPS, TAU = 7, 5, 0.8

    def _problem(self, scheme, lattice, backend):
        lat = get_lattice(lattice)
        grid = (12, 8) if lat.d == 2 else (8, 6, 5)
        rng = np.random.default_rng(self.SEED)
        rho0 = 1.0 + 0.02 * rng.standard_normal(grid)
        u0 = 0.02 * rng.standard_normal((lat.d, *grid))
        return periodic_problem(scheme, lattice, grid, self.TAU,
                                rho0=rho0, u0=u0, backend=backend)

    def test_matches_reference_trajectory(self, backend, scheme, lattice):
        fast = self._problem(scheme, lattice, backend)
        ref = self._problem(scheme, lattice, "reference")
        fast.run(self.STEPS)
        ref.run(self.STEPS)
        rho_f, u_f = fast.macroscopic()
        rho_r, u_r = ref.macroscopic()
        assert np.abs(rho_f - rho_r).max() < TOL
        assert np.abs(u_f - u_r).max() < TOL

    def test_conserves_mass_and_momentum(self, backend, scheme, lattice):
        solver = self._problem(scheme, lattice, backend)
        rho0, u0 = solver.macroscopic()
        mass0 = rho0.sum()
        mom0 = (rho0 * u0).sum(axis=tuple(range(1, u0.ndim)))
        solver.run(self.STEPS)
        rho, u = solver.macroscopic()
        assert abs(rho.sum() - mass0) < TOL * rho0.size
        mom = (rho * u).sum(axis=tuple(range(1, u.ndim)))
        assert np.abs(mom - mom0).max() < TOL * rho0.size
