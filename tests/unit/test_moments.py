"""Unit tests for moment-space projections (Eqs. 1-3, 11)."""

import numpy as np

from repro.core import (
    equilibrium,
    f_from_moments,
    macroscopic,
    moments_from_f,
    pack_moments,
    pi_cols_from_tensor,
    pi_tensor_from_cols,
    second_moment_cols,
    split_moments,
    velocity_from_moments,
)


class TestProjection:
    def test_macroscopic_matches_sums(self, lattice, random_state):
        _, _, f = random_state
        rho, u = macroscopic(lattice, f)
        assert np.allclose(rho, f.sum(axis=0))
        j = np.einsum("qa,q...->a...", lattice.c.astype(float), f)
        assert np.allclose(u, j / rho)

    def test_moment_layout(self, lattice, random_state):
        _, _, f = random_state
        m = moments_from_f(lattice, f)
        rho, u = macroscopic(lattice, f)
        assert m.shape == (lattice.n_moments, *f.shape[1:])
        assert np.allclose(m[0], rho)
        assert np.allclose(m[1:1 + lattice.d], rho * u)
        assert np.allclose(m[1 + lattice.d:], second_moment_cols(lattice, f))

    def test_second_moment_definition(self, lattice, random_state):
        """Pi_ab = sum_i (c_ia c_ib - cs2 delta_ab) f_i (Eq. 3)."""
        _, _, f = random_state
        cols = second_moment_cols(lattice, f)
        c = lattice.c.astype(float)
        for k, (a, b) in enumerate(lattice.pair_tuples):
            expected = np.einsum("q,q...->...",
                                 c[:, a] * c[:, b]
                                 - lattice.cs2 * (a == b), f)
            assert np.allclose(cols[k], expected)

    def test_split_pack_roundtrip(self, lattice, random_state):
        _, _, f = random_state
        m = moments_from_f(lattice, f)
        rho, j, pi = split_moments(lattice, m)
        m2 = pack_moments(lattice, rho, j, pi)
        assert np.allclose(m, m2)

    def test_velocity_from_moments(self, lattice, random_state):
        rho, u, f = random_state
        m = moments_from_f(lattice, f)
        rho2, u2 = macroscopic(lattice, f)
        assert np.allclose(velocity_from_moments(lattice, m), u2)


class TestReconstruction:
    def test_equilibrium_is_fixed_point(self, lattice, random_state):
        """Reconstruction of equilibrium moments gives back Eq. 4."""
        rho, u, _ = random_state
        from repro.core import equilibrium_moments

        m = equilibrium_moments(lattice, rho, u)
        assert np.allclose(f_from_moments(lattice, m), equilibrium(lattice, rho, u))

    def test_moments_preserved(self, lattice, random_state):
        """M(R m) = m: Eq. 11 reproduces exactly its input moments."""
        _, _, f = random_state
        m = moments_from_f(lattice, f)
        f_rec = f_from_moments(lattice, m)
        assert np.allclose(moments_from_f(lattice, f_rec), m, atol=1e-12)

    def test_reconstruction_loses_only_higher_moments(self, lattice, random_state):
        """R(M f) != f in general (the state also has ghost content) but
        conserves everything the paper's moment space tracks."""
        _, _, f = random_state
        f_rec = f_from_moments(lattice, moments_from_f(lattice, f))
        r1, u1 = macroscopic(lattice, f)
        r2, u2 = macroscopic(lattice, f_rec)
        assert np.allclose(r1, r2)
        assert np.allclose(u1, u2)


class TestTensorHelpers:
    def test_cols_tensor_roundtrip(self, lattice, rng):
        grid = (4,) * lattice.d
        sym = rng.standard_normal((lattice.d, lattice.d, *grid))
        sym = sym + np.swapaxes(sym, 0, 1)
        cols = pi_cols_from_tensor(lattice, sym)
        back = pi_tensor_from_cols(lattice, cols)
        assert np.allclose(back, sym)

    def test_cols_shape(self, lattice):
        cols = pi_cols_from_tensor(
            lattice, np.zeros((lattice.d, lattice.d, 3))
        )
        assert cols.shape == (lattice.n_pairs, 3)
