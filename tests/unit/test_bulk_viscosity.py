"""Unit tests for the two-relaxation bulk-viscosity split (moment space)."""

import numpy as np
import pytest

from repro.core import (
    ProjectiveRegularizedCollision,
    collide_moments_projective,
    equilibrium,
    f_from_moments,
    macroscopic,
    moments_from_f,
)
from repro.core.collision import _split_trace
from repro.lattice import get_lattice
from repro.solver import MRPSolver
from repro.geometry import periodic_box


@pytest.fixture
def state(paper_lattice, rng):
    lat = paper_lattice
    grid = (4,) * lat.d
    rho = 1 + 0.04 * rng.standard_normal(grid)
    u = 0.04 * rng.standard_normal((lat.d, *grid))
    f = equilibrium(lat, rho, u) * (1 + 0.02 * rng.standard_normal((lat.q, *grid)))
    return lat, f


class TestTraceSplit:
    def test_decomposition_sums(self, paper_lattice, rng):
        lat = paper_lattice
        cols = rng.standard_normal((lat.n_pairs, 3))
        dev, tr = _split_trace(lat, cols)
        assert np.allclose(dev + tr, cols)
        # Deviatoric part is traceless.
        diag = [lat.pair_index(a, a) for a in range(lat.d)]
        assert np.allclose(sum(dev[k] for k in diag), 0, atol=1e-13)
        # Trace part is isotropic: off-diagonals zero, diagonals equal.
        off = [k for k in range(lat.n_pairs) if k not in diag]
        for k in off:
            assert np.allclose(tr[k], 0)
        assert np.allclose(tr[diag[0]], tr[diag[-1]])


class TestBulkCollision:
    def test_tau_bulk_equal_tau_is_noop(self, state):
        lat, f = state
        m = moments_from_f(lat, f)
        a = collide_moments_projective(lat, m, 0.8)
        b = collide_moments_projective(lat, m, 0.8, tau_bulk=0.8)
        assert np.allclose(a, b, atol=1e-14)

    def test_distribution_moment_equivalence(self, state):
        lat, f = state
        op = ProjectiveRegularizedCollision(0.8, tau_bulk=1.3)
        fd = op(lat, f)
        fm = f_from_moments(
            lat,
            collide_moments_projective(lat, moments_from_f(lat, f), 0.8,
                                       tau_bulk=1.3),
        )
        assert np.allclose(fd, fm, atol=1e-13)

    def test_conserves_mass_momentum(self, state):
        lat, f = state
        f_star = ProjectiveRegularizedCollision(0.8, tau_bulk=2.0)(lat, f)
        r0, u0 = macroscopic(lat, f)
        r1, u1 = macroscopic(lat, f_star)
        assert np.allclose(r0, r1, atol=1e-13)
        assert np.allclose(r0 * u0, r1 * u1, atol=1e-13)

    def test_shear_unaffected_by_bulk_rate(self, state):
        """Off-diagonal Pi relaxes with tau regardless of tau_bulk."""
        lat, f = state
        m = moments_from_f(lat, f)
        a = collide_moments_projective(lat, m, 0.8)
        b = collide_moments_projective(lat, m, 0.8, tau_bulk=3.0)
        off = [1 + lat.d + k for k, (x, y) in enumerate(lat.pair_tuples)
               if x != y]
        assert np.allclose(a[off], b[off], atol=1e-14)
        diag = [1 + lat.d + lat.pair_index(x, x) for x in range(lat.d)]
        assert not np.allclose(a[diag], b[diag])

    def test_invalid_tau_bulk(self):
        with pytest.raises(ValueError):
            ProjectiveRegularizedCollision(0.8, tau_bulk=0.4)


class TestAcousticDamping:
    def test_higher_bulk_viscosity_damps_pressure_pulse_faster(self):
        """A density pulse in a periodic box decays faster with larger
        tau_bulk — the physical effect the knob exists for."""
        lat = get_lattice("D2Q9")
        shape = (48, 48)
        x, y = np.meshgrid(np.arange(48), np.arange(48), indexing="ij")
        rho0 = 1.0 + 0.01 * np.exp(-((x - 24) ** 2 + (y - 24) ** 2) / 18.0)

        def residual(tau_bulk):
            s = MRPSolver(lat, periodic_box(shape), 0.52, rho0=rho0,
                          tau_bulk=tau_bulk)
            s.run(300)
            return float(np.abs(s.density() - 1.0).max())

        low = residual(0.52)        # bulk = shear (tiny)
        high = residual(1.5)        # strongly enhanced bulk viscosity
        assert high < 0.6 * low
