"""Unit tests for the kernel-side problem description."""

import numpy as np
import pytest

from repro.geometry import channel_2d, channel_3d
from repro.gpu import KernelProblem
from repro.lattice import get_lattice


@pytest.fixture
def d2q9():
    return get_lattice("D2Q9")


class TestConstruction:
    def test_bad_mode(self, d2q9):
        with pytest.raises(ValueError, match="mode"):
            KernelProblem(d2q9, (8, 8), 0.8, mode="cavity")

    def test_shape_dimension_checked(self, d2q9):
        with pytest.raises(ValueError, match="shape"):
            KernelProblem(d2q9, (8, 8, 8), 0.8)

    def test_channel_default_inlet(self, d2q9):
        p = KernelProblem(d2q9, (8, 6), 0.8, mode="channel")
        assert p.u_inlet.shape == (2, 6)
        assert np.allclose(p.u_inlet, 0)

    def test_channel_inlet_shape_checked(self, d2q9):
        with pytest.raises(ValueError, match="u_inlet"):
            KernelProblem(d2q9, (8, 6), 0.8, mode="channel",
                          u_inlet=np.zeros((2, 5)))

    def test_bad_outlet_tangential(self, d2q9):
        with pytest.raises(ValueError, match="tangential"):
            KernelProblem(d2q9, (8, 6), 0.8, mode="channel",
                          outlet_tangential="extrapolate-linear")


class TestGeometryPredicates:
    def test_periodic_never_solid(self, d2q9):
        p = KernelProblem(d2q9, (8, 6), 0.8, mode="periodic")
        x = np.array([-1, 0, 5, 8])
        y = np.array([-1, 0, 5, 6])
        assert not p.is_solid((x, y)).any()
        assert p.axis_periodic(0) and p.axis_periodic(1)

    def test_channel_walls_2d(self, d2q9):
        p = KernelProblem(d2q9, (8, 6), 0.8, mode="channel")
        x = np.zeros(4, dtype=int)
        y = np.array([-1, 0, 5, 6])
        assert p.is_solid((x, y)).tolist() == [True, True, True, True]
        assert not p.is_solid((x, np.array([1, 2, 3, 4]))).any()
        assert not p.axis_periodic(0)

    def test_channel_walls_3d(self):
        lat = get_lattice("D3Q19")
        p = KernelProblem(lat, (8, 6, 5), 0.8, mode="channel")
        coords = (np.array([3]), np.array([2]), np.array([0]))
        assert p.is_solid(coords).all()
        coords = (np.array([3]), np.array([2]), np.array([2]))
        assert not p.is_solid(coords).any()

    def test_in_domain(self, d2q9):
        p = KernelProblem(d2q9, (8, 6), 0.8, mode="channel")
        x = np.array([-1, 0, 7, 8])
        y = np.array([2, 2, 2, 2])
        assert p.in_domain((x, y)).tolist() == [False, True, True, False]

    def test_node_type_grid_matches_geometry(self, d2q9):
        p = KernelProblem(d2q9, (8, 6), 0.8, mode="channel")
        assert np.array_equal(p.node_type_grid(), channel_2d(8, 6).node_type)

    def test_node_type_grid_3d(self):
        lat = get_lattice("D3Q19")
        p = KernelProblem(lat, (6, 5, 4), 0.8, mode="channel")
        assert np.array_equal(p.node_type_grid(), channel_3d(6, 5, 4).node_type)

    def test_node_type_grid_periodic(self, d2q9):
        p = KernelProblem(d2q9, (4, 4), 0.8)
        assert (p.node_type_grid() == 0).all()


class TestComponentSets:
    def test_inlet_outlet_components_partition(self, paper_lattice):
        p = KernelProblem(paper_lattice, (8,) * paper_lattice.d, 0.8)
        for getter in (p.inlet_components, p.outlet_components):
            unknown, tangential, known = getter()
            all_idx = np.sort(np.concatenate([unknown, tangential, known]))
            assert np.array_equal(all_idx, np.arange(paper_lattice.q))

    def test_inlet_unknowns_point_inward(self, paper_lattice):
        p = KernelProblem(paper_lattice, (8,) * paper_lattice.d, 0.8)
        unknown, _, _ = p.inlet_components()
        assert (paper_lattice.c[unknown, 0] > 0).all()

    def test_outlet_unknowns_point_inward(self, paper_lattice):
        p = KernelProblem(paper_lattice, (8,) * paper_lattice.d, 0.8)
        unknown, _, _ = p.outlet_components()
        assert (paper_lattice.c[unknown, 0] < 0).all()
