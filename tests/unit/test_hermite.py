"""Unit tests for the discrete Hermite tensor machinery."""

import numpy as np
import pytest

from repro.lattice import get_lattice
from repro.lattice.hermite import (
    distinct_index_tuples,
    distinct_tensor_columns,
    hermite_tensors,
    index_multiplicity,
    symmetric_contraction_weights,
)


@pytest.fixture
def d2q9_c():
    return get_lattice("D2Q9").c


class TestHermiteTensors:
    def test_h0_is_one(self, d2q9_c):
        h = hermite_tensors(d2q9_c, 1 / 3, 0)
        assert np.array_equal(h[0], np.ones(9))

    def test_h1_is_velocity(self, d2q9_c):
        h = hermite_tensors(d2q9_c, 1 / 3, 1)
        assert np.allclose(h[1], d2q9_c)

    def test_h2_explicit_formula(self, d2q9_c):
        cs2 = 1 / 3
        h = hermite_tensors(d2q9_c, cs2, 2)
        c = d2q9_c.astype(float)
        expected = np.einsum("qa,qb->qab", c, c) - cs2 * np.eye(2)
        assert np.allclose(h[2], expected)

    def test_h3_explicit_formula(self, d2q9_c):
        cs2 = 1 / 3
        h = hermite_tensors(d2q9_c, cs2, 3)
        c = d2q9_c.astype(float)
        eye = np.eye(2)
        ccc = np.einsum("qa,qb,qc->qabc", c, c, c)
        corr = (
            np.einsum("qa,bc->qabc", c, eye)
            + np.einsum("qb,ac->qabc", c, eye)
            + np.einsum("qc,ab->qabc", c, eye)
        )
        assert np.allclose(h[3], ccc - cs2 * corr)

    def test_h4_explicit_formula(self, d2q9_c):
        cs2 = 1 / 3
        h = hermite_tensors(d2q9_c, cs2, 4)
        c = d2q9_c.astype(float)
        eye = np.eye(2)
        c4 = np.einsum("qa,qb,qc,qd->qabcd", c, c, c, c)
        # Six delta-contracted second-order terms.
        cc = np.einsum("qa,qb->qab", c, c)
        corr2 = (
            np.einsum("qab,cd->qabcd", cc, eye)
            + np.einsum("qac,bd->qabcd", cc, eye)
            + np.einsum("qad,bc->qabcd", cc, eye)
            + np.einsum("qbc,ad->qabcd", cc, eye)
            + np.einsum("qbd,ac->qabcd", cc, eye)
            + np.einsum("qcd,ab->qabcd", cc, eye)
        )
        corr0 = (
            np.einsum("ab,cd->abcd", eye, eye)
            + np.einsum("ac,bd->abcd", eye, eye)
            + np.einsum("ad,bc->abcd", eye, eye)
        )
        expected = c4 - cs2 * corr2 + cs2 * cs2 * corr0[None]
        assert np.allclose(h[4], expected)

    def test_tensors_are_symmetric(self, lattice):
        h = lattice.h
        assert np.allclose(h[2], np.swapaxes(h[2], 1, 2))
        for perm in ((0, 2, 1, 3), (0, 3, 2, 1), (0, 1, 3, 2)):
            assert np.allclose(h[3], np.transpose(h[3], perm))

    def test_weighted_orthogonality_low_orders(self, lattice):
        """<H_m, H_n>_w = 0 for m != n with m+n <= 3 (lattice symmetry)."""
        w, h = lattice.w, lattice.h
        assert np.allclose(np.einsum("q,q...->...", w, h[1]), 0)
        assert np.allclose(np.einsum("q,qab->ab", w, h[2]), 0)
        assert np.allclose(np.einsum("q,qa,qbc->abc", w, h[1], h[2]), 0)

    def test_h2_second_moment_identity(self, lattice):
        """sum_i w_i H2_iab H2_icd has the isotropic cs4 structure."""
        w, h2 = lattice.w, lattice.h[2]
        d = lattice.d
        got = np.einsum("q,qab,qcd->abcd", w, h2, h2)
        eye = np.eye(d)
        expected = lattice.cs4 * (
            np.einsum("ac,bd->abcd", eye, eye) + np.einsum("ad,bc->abcd", eye, eye)
        )
        assert np.allclose(got, expected)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            hermite_tensors(np.zeros(3), 1 / 3, 2)       # not 2D
        with pytest.raises(ValueError):
            hermite_tensors(np.zeros((3, 2)), 1 / 3, -1)  # negative order


class TestDistinctIndexMachinery:
    def test_distinct_tuples_2d_order2(self):
        assert distinct_index_tuples(2, 2) == [(0, 0), (0, 1), (1, 1)]

    def test_distinct_tuples_3d_order2(self):
        assert distinct_index_tuples(3, 2) == [
            (0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2)
        ]

    def test_distinct_tuples_order0(self):
        assert distinct_index_tuples(3, 0) == [()]

    def test_counts(self):
        # Number of distinct symmetric components: C(d+n-1, n).
        assert len(distinct_index_tuples(3, 3)) == 10
        assert len(distinct_index_tuples(3, 4)) == 15
        assert len(distinct_index_tuples(2, 4)) == 5

    def test_multiplicity(self):
        assert index_multiplicity((0, 0)) == 1
        assert index_multiplicity((0, 1)) == 2
        assert index_multiplicity((0, 0, 1)) == 3
        assert index_multiplicity((0, 1, 2)) == 6
        assert index_multiplicity((0, 0, 1, 1)) == 6
        assert index_multiplicity((0, 1, 1, 2)) == 12

    def test_multiplicities_sum_to_full_tensor(self):
        for d, n in ((2, 2), (2, 3), (3, 2), (3, 3), (3, 4)):
            w = symmetric_contraction_weights(d, n)
            assert w.sum() == d ** n

    def test_distinct_columns_roundtrip(self, lattice):
        cols, tuples, mults = distinct_tensor_columns(lattice.h[2])
        # Full contraction == weighted distinct contraction.
        rng = np.random.default_rng(0)
        sym = rng.standard_normal((lattice.d,) * 2)
        sym = sym + sym.T
        full = np.einsum("qab,ab->q", lattice.h[2], sym)
        distinct = sum(
            m * cols[:, k] * sym[t] for k, (t, m) in enumerate(zip(tuples, mults))
        )
        assert np.allclose(full, distinct)

    def test_distinct_columns_rejects_scalar(self):
        with pytest.raises(ValueError):
            distinct_tensor_columns(np.float64(3.0))
