"""Unit: benchmark trajectory records, regression sentinel, roofline join.

Covers the :mod:`repro.obs.bench` schema contract (validation rejects
malformed records loudly), the append-only trajectory file, the
noise-aware comparator (an injected slowdown trips the sentinel, a clean
rerun passes, and a wobbly baseline widens its own band) and the
:mod:`repro.obs.attain` roofline join against the paper's bytes/FLUP
model.
"""

import json

import pytest

from repro.obs import (
    BENCH_SCHEMA_VERSION,
    BenchCell,
    BenchRecord,
    append_records,
    attain_cell,
    attainment_note,
    compare_to_baseline,
    default_suite,
    format_comparison,
    format_records,
    load_trajectory,
    measure_host_bandwidth,
    records_from_comparison,
    run_cell,
    run_suite,
    trajectory_path,
    validate_record,
    validate_trajectory,
)
from repro.lattice import get_lattice
from repro.obs.attain import BANDWIDTH_BOUND_ATTAINMENT
from repro.obs.bench import git_rev
from repro.perf import bytes_per_flup


def make_record(mlups=100.0, **over):
    """A schema-valid record dict with overridable fields."""
    rec = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "suite": "test",
        "scheme": "ST",
        "lattice": "D2Q9",
        "backend": "reference",
        "problem": "periodic",
        "shape": [48, 48],
        "ranks": 1,
        "tau": 0.8,
        "steps": 4,
        "repeats": 2,
        "n_fluid": 2304,
        "wall_s": 0.01,
        "mlups": mlups,
        "bytes_per_flup": 144.0,
        "effective_gbs": (mlups * 144.0 / 1e3
                          if isinstance(mlups, (int, float)) else 0.0),
        "attainment": 0.1,
        "model_mlups": 6250.0,
        "model_device": "V100",
        "git_rev": "abc1234",
        "timestamp": 1.0,
    }
    rec.update(over)
    return rec


class TestRecordSchema:
    def test_valid_record_passes(self):
        assert validate_record(make_record()) is not None

    def test_dataclass_round_trip(self):
        rec = BenchRecord.from_dict(make_record())
        d = rec.to_dict()
        assert d["scheme"] == "ST"
        assert d["shape"] == [48, 48]          # tuples serialize as lists
        assert rec.shape == (48, 48)
        assert BenchRecord.from_dict(d) == rec

    def test_missing_field_rejected(self):
        rec = make_record()
        del rec["mlups"]
        with pytest.raises(ValueError, match="missing field 'mlups'"):
            validate_record(rec)

    def test_wrong_type_rejected(self):
        with pytest.raises(ValueError, match="field 'mlups' has type"):
            validate_record(make_record(mlups="fast"))

    def test_bool_is_not_an_int(self):
        with pytest.raises(ValueError, match="'ranks'"):
            validate_record(make_record(ranks=True))

    def test_schema_version_mismatch_rejected(self):
        with pytest.raises(ValueError, match="schema_version"):
            validate_record(make_record(schema_version=99))

    def test_negative_throughput_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            validate_record(make_record(mlups=-1.0))

    def test_git_rev_in_repo(self):
        assert isinstance(git_rev(), str) and git_rev()


class TestTrajectoryFile:
    def test_path_convention(self, tmp_path):
        assert trajectory_path("default").name == "BENCH_default.json"
        assert trajectory_path("ci", tmp_path) == tmp_path / "BENCH_ci.json"

    def test_load_absent_gives_skeleton(self, tmp_path):
        doc = load_trajectory(tmp_path / "BENCH_none.json")
        assert doc == {"schema_version": BENCH_SCHEMA_VERSION,
                       "suite": None, "records": []}

    def test_append_and_reload(self, tmp_path):
        path = tmp_path / "BENCH_t.json"
        append_records(path, [make_record(mlups=10.0)])
        append_records(path, [make_record(mlups=11.0)])
        doc = load_trajectory(path)
        assert doc["suite"] == "test"
        assert [r["mlups"] for r in doc["records"]] == [10.0, 11.0]
        assert validate_trajectory(doc) is doc

    def test_append_rejects_malformed(self, tmp_path):
        path = tmp_path / "BENCH_t.json"
        with pytest.raises(ValueError):
            append_records(path, [make_record(schema_version=2)])
        assert not path.exists()               # nothing written on failure

    def test_corrupt_trajectory_rejected(self, tmp_path):
        path = tmp_path / "BENCH_t.json"
        path.write_text(json.dumps({"schema_version": 0, "records": []}))
        with pytest.raises(ValueError, match="schema_version"):
            load_trajectory(path)


class TestRegressionSentinel:
    BASELINE = [make_record(mlups=m) for m in (99.0, 100.0, 101.0)]

    def _verdict(self, new_mlups):
        result = compare_to_baseline(self.BASELINE,
                                     [make_record(mlups=new_mlups)])
        return result, result["verdicts"][0]

    def test_injected_slowdown_trips(self):
        result, v = self._verdict(60.0)
        assert v["status"] == "regression"
        assert result["regressions"] == 1
        assert v["baseline_mlups"] == 100.0
        assert v["ratio"] == pytest.approx(0.6)

    def test_clean_run_passes(self):
        result, v = self._verdict(98.0)
        assert v["status"] == "ok"
        assert result["regressions"] == 0

    def test_improvement_flagged(self):
        _, v = self._verdict(140.0)
        assert v["status"] == "improved"

    def test_unknown_cell_is_new(self):
        result = compare_to_baseline(
            self.BASELINE, [make_record(lattice="D3Q19")])
        v = result["verdicts"][0]
        assert v["status"] == "new" and v["baseline_mlups"] is None
        assert result["regressions"] == 0

    def test_noisy_baseline_widens_band(self):
        # 40% historical spread: a 30% drop must NOT trip the sentinel.
        noisy = [make_record(mlups=m) for m in (80.0, 100.0, 120.0)]
        result = compare_to_baseline(noisy, [make_record(mlups=70.0)],
                                     rel_threshold=0.15)
        v = result["verdicts"][0]
        assert v["threshold"] == pytest.approx(0.4)
        assert v["status"] == "ok"

    def test_baseline_window_uses_recent_records(self):
        # Old slow history must not mask a regression vs the recent past.
        history = ([make_record(mlups=10.0)] * 5
                   + [make_record(mlups=m) for m in (99.0, 100.0, 101.0,
                                                     100.0, 100.0)])
        result = compare_to_baseline(history, [make_record(mlups=60.0)],
                                     baseline_window=5)
        assert result["verdicts"][0]["status"] == "regression"

    def test_verdicts_carry_attainment_note(self):
        _, v = self._verdict(98.0)
        assert v["note"] == attainment_note(v["attainment"])

    def test_format_comparison_renders(self):
        result, _ = self._verdict(60.0)
        text = format_comparison(result)
        assert "regression" in text and "1 regression(s)" in text


class TestRooflineJoin:
    def test_bytes_per_flup_matches_paper_model(self):
        # ST streams 2Q values/FLUP, MR streams 2M (paper Table 2).
        lat = get_lattice("D2Q9")
        st = attain_cell(10.0, "ST", "D2Q9", host_gbs=10.0)
        mr = attain_cell(10.0, "MR-P", "D2Q9", host_gbs=10.0)
        assert st["bytes_per_flup"] == bytes_per_flup(lat, "ST") == 144.0
        assert mr["bytes_per_flup"] == bytes_per_flup(lat, "MR") == 96.0

    def test_power_law_scheme_maps_to_mr(self):
        att = attain_cell(10.0, "MR-P-PL", "D2Q9", host_gbs=10.0)
        assert att["pattern"] == "MR"

    def test_attainment_is_effective_over_host(self):
        att = attain_cell(10.0, "ST", "D2Q9", host_gbs=14.4)
        assert att["effective_gbs"] == pytest.approx(10.0 * 144.0 / 1e3)
        assert att["attainment"] == pytest.approx(1.44 / 14.4)
        assert att["bound"] == "overhead"

    def test_bandwidth_bound_classification(self):
        # Attainment above the threshold reads as truly bandwidth-bound.
        att = attain_cell(60.0, "ST", "D2Q9", host_gbs=14.4)
        assert att["attainment"] >= BANDWIDTH_BOUND_ATTAINMENT
        assert att["bound"] == "bandwidth"

    def test_model_roofline_column(self):
        att = attain_cell(10.0, "ST", "D2Q9", device="V100", host_gbs=10.0)
        assert att["model_device"] == "V100"
        assert att["model_mlups"] == pytest.approx(900e9 / 144.0 / 1e6)

    def test_host_bandwidth_probe_cached(self):
        a = measure_host_bandwidth(nbytes=1 << 20, repeats=1)
        b = measure_host_bandwidth()
        assert a > 0 and a == b                # module-level cache

    def test_attainment_note_strings(self):
        assert "bandwidth" in attainment_note(0.8)
        assert isinstance(attainment_note(0.01), str)


class TestMeasurement:
    def test_run_cell_produces_valid_record(self):
        cell = BenchCell("ST", "D2Q9", "fused", "periodic", (24, 24),
                         steps=2, repeats=1)
        rec = run_cell(cell, suite="unit", host_gbs=10.0, warmup=1)
        d = rec.to_dict()
        validate_record(d)
        assert d["mlups"] > 0 and d["wall_s"] > 0
        assert d["n_fluid"] == 24 * 24
        assert d["bytes_per_flup"] == 144.0
        assert d["extra"]["bound"] in ("bandwidth", "overhead")
        assert "MLUPS" in format_records([rec])

    def test_run_suite_reports_progress(self):
        cells = [BenchCell("ST", "D2Q9", "fused", "periodic", (16, 16),
                           steps=1, repeats=1)]
        seen = []
        records = run_suite(cells, suite="unit", progress=seen.append)
        assert seen == records and len(records) == 1
        validate_record(records[0].to_dict())

    def test_default_suite_shapes(self):
        quick, full = default_suite(quick=True), default_suite()
        assert len(quick) >= 4 and len(full) > len(quick)
        assert all(c.key() for c in quick)
        assert any(c.ranks > 1 for c in full)  # one distributed cell
        assert any(c.lattice == "D3Q19" for c in full)

    def test_records_from_comparison(self):
        from repro.obs import compare_backends

        result = compare_backends("ST", "D2Q9", shape=(24, 24), steps=2)
        records = records_from_comparison(result, suite="paper-bench",
                                          host_gbs=10.0)
        assert len(records) == len(result["backends"])
        for rec in records:
            validate_record(rec)
            assert rec["suite"] == "paper-bench"
            assert rec["extra"]["speedup"] is not None


class TestShortHistoryEdgeCases:
    """Audited short-history behavior of the comparator: a first-ever
    cell can never be a regression and thin baselines widen their band."""

    def test_empty_history_every_cell_is_new(self):
        result = compare_to_baseline([], [make_record(mlups=1.0)])
        v = result["verdicts"][0]
        assert v["status"] == "new"
        assert v["baseline_mlups"] is None and v["ratio"] is None
        assert result["regressions"] == 0

    def test_one_sample_baseline_uses_threshold_floor(self):
        """One prior record has no spread estimate; a 20% wobble (well
        within host-timing noise) must not read as a regression."""
        from repro.obs.bench import ONE_SAMPLE_THRESHOLD_FLOOR

        result = compare_to_baseline([make_record(mlups=100.0)],
                                     [make_record(mlups=80.0)])
        v = result["verdicts"][0]
        assert v["n_baseline"] == 1
        assert v["threshold"] == pytest.approx(ONE_SAMPLE_THRESHOLD_FLOOR)
        assert v["status"] == "ok"

    def test_one_sample_real_cliff_still_trips(self):
        result = compare_to_baseline([make_record(mlups=100.0)],
                                     [make_record(mlups=50.0)])
        assert result["verdicts"][0]["status"] == "regression"

    def test_history_shorter_than_window_is_used_as_is(self):
        history = [make_record(mlups=m) for m in (99.0, 101.0)]
        result = compare_to_baseline(history, [make_record(mlups=100.0)],
                                     baseline_window=5)
        v = result["verdicts"][0]
        assert v["n_baseline"] == 2
        assert v["status"] == "ok"
        assert v["baseline_mlups"] == pytest.approx(100.0)

    def test_zero_baseline_is_uncomparable_not_flagged(self):
        """Degenerate (zero-MLUPS) history cannot flag healthy runs."""
        result = compare_to_baseline([make_record(mlups=0.0)],
                                     [make_record(mlups=100.0)])
        v = result["verdicts"][0]
        assert v["status"] == "ok" and v["ratio"] is None
        assert result["regressions"] == 0


class TestBatchedCell:
    def test_batched_cell_produces_valid_record(self):
        cell = BenchCell("MR-P", "D2Q9", "batched", "periodic", (16, 16),
                         steps=2, repeats=1, batch=3)
        rec = run_cell(cell, suite="unit", host_gbs=10.0, warmup=0)
        d = rec.to_dict()
        validate_record(d)
        assert d["extra"]["batch"] == 3
        assert d["backend"] == "batched"
        # n_fluid counts the whole ensemble's updated nodes.
        assert d["n_fluid"] == 3 * 16 * 16
        assert d["mlups"] > 0

    def test_batched_cell_key_excludes_batch(self):
        """Trajectory identity comes from backend="batched", not B, so
        retuning the batch size keeps one comparable history."""
        a = BenchCell("MR-P", "D2Q9", "batched", "periodic", (32, 32),
                      batch=8)
        b = BenchCell("MR-P", "D2Q9", "batched", "periodic", (32, 32),
                      batch=16)
        assert a.key() == b.key()

    def test_default_suites_carry_a_batched_cell(self):
        quick, full = default_suite(quick=True), default_suite()
        assert any(c.backend == "batched" and c.batch > 1 for c in quick)
        assert any(c.backend == "batched" and c.batch > 1 for c in full)

    def test_batched_label_rendering(self):
        cell = BenchCell("MR-P", "D2Q9", "batched", "periodic", (16, 16),
                         steps=2, repeats=1, batch=3)
        rec = run_cell(cell, suite="unit", host_gbs=10.0, warmup=0)
        assert "x3b" in format_records([rec])
