"""Integration: plane-Couette flow (moving-wall bounce-back validation)."""

import numpy as np
import pytest

from repro.boundary import HalfwayBounceBack
from repro.geometry import channel_2d
from repro.lattice import get_lattice
from repro.solver import make_solver
from repro.validation import couette_profile


def couette_solver(scheme: str, shape=(8, 22), u_wall=0.04, tau=0.8):
    """Streamwise-periodic gap with the top wall sliding at u_wall."""
    lat = get_lattice("D2Q9")
    domain = channel_2d(*shape, with_io=False)
    wall_u = np.zeros((2, *shape))
    wall_u[0, :, -1] = u_wall
    bb = HalfwayBounceBack(wall_velocity=wall_u)
    return make_solver(scheme, lat, domain, tau, boundaries=[bb])


SCHEMES = ["ST", "MR-P", "MR-R"]


@pytest.mark.parametrize("scheme", SCHEMES)
def test_linear_profile(scheme):
    shape, u_wall = (8, 22), 0.04
    s = couette_solver(scheme, shape, u_wall)
    s.run_to_steady_state(tol=1e-12, check_interval=200, max_steps=80_000)
    ux = s.velocity()[0]
    analytic = couette_profile(shape[1], u_wall)
    err = np.abs(ux[4, 1:-1] - analytic[1:-1]).max() / u_wall
    assert err < 3e-3, (scheme, err)
    # No transverse flow.
    assert np.abs(s.velocity()[1]).max() < 1e-10


def test_shear_stress_uniform_from_moments():
    """Couette has constant shear: the gradient-free MR stress shows it."""
    from repro.analysis import strain_rate_from_moments

    shape, u_wall, tau = (8, 22), 0.04, 0.8
    s = couette_solver("MR-P", shape, u_wall, tau)
    s.run_to_steady_state(tol=1e-12, check_interval=200, max_steps=80_000)
    lat = s.lat
    strain = strain_rate_from_moments(lat, s.m, tau)
    sxy = strain[lat.pair_index(0, 1)]
    expected = 0.5 * u_wall / (shape[1] - 2)      # 1/2 du/dy
    interior = sxy[:, 2:-2]
    assert np.allclose(interior, expected, rtol=0.02)


def test_wall_drag_matches_viscous_stress():
    """Momentum exchange on both walls equals tau_w x area.

    The fluid drags the static bottom wall *along* the flow (+x) and
    resists the moving top wall (-x); the tangential magnitudes are equal
    (constant shear) and the normal components are the hydrostatic
    pressure rho cs2 x area, pointing out of the fluid.
    """
    from repro.analysis import MomentumExchangeForce

    shape, u_wall, tau = (8, 22), 0.04, 0.8
    s = couette_solver("ST", shape, u_wall, tau)
    s.run_to_steady_state(tol=1e-12, check_interval=200, max_steps=80_000)
    nu = s.lat.viscosity(tau)
    tau_wall = nu * u_wall / (shape[1] - 2)       # rho = 1
    area = shape[0]

    bottom = np.zeros(shape, dtype=bool)
    bottom[:, 0] = True
    f_bot = MomentumExchangeForce(s, body_mask=bottom).force()
    assert f_bot[0] == pytest.approx(tau_wall * area, rel=0.02)
    assert f_bot[1] == pytest.approx(-s.lat.cs2 * area, rel=0.01)

    wall_u = np.zeros((2, *shape))
    wall_u[0, :, -1] = u_wall
    top = np.zeros(shape, dtype=bool)
    top[:, -1] = True
    f_top = MomentumExchangeForce(s, body_mask=top,
                                  wall_velocity=wall_u).force()
    assert f_top[0] == pytest.approx(-tau_wall * area, rel=0.02)
    assert f_top[1] == pytest.approx(s.lat.cs2 * area, rel=0.01)
