"""Integration: distributed checkpoints — save, kill, resume, re-shard.

The acceptance bar of the fault-tolerance layer (docs/PARALLEL.md): a run
that is checkpointed, killed, and resumed must land on *exactly* the same
fields as an uninterrupted run — to machine precision, for both the ST
and MR representations, for 1/2/4 ranks, and when the resumed run uses a
different rank count than the writing run (the checkpoint stores the
global assembly, so slabs are recut on load). Also covers the checkpoint
directory contract itself: COMPLETE markers, torn-directory rejection,
pruning, and manifest validation against an incompatible spec.
"""

import os

import numpy as np
import pytest

from repro.io.checkpoint import (
    checkpoint_step,
    is_checkpoint_complete,
    latest_checkpoint,
    load_distributed_checkpoint,
    load_manifest_for_resume,
    validate_checkpoint_manifest,
)
from repro.parallel import RunSpec, run_process

SHAPE_2D = (24, 10)
TAU = 0.8


def _spec(scheme, n_ranks, **kw):
    return RunSpec("periodic", scheme, "D2Q9", SHAPE_2D, n_ranks,
                   tau=TAU, **kw)


def _max_err(a, b):
    return max(np.abs(a.rho - b.rho).max(), np.abs(a.u - b.u).max())


class TestSaveKillResume:
    """Checkpoint -> stop -> resume equals the uninterrupted trajectory."""

    @pytest.mark.parametrize("scheme", ["ST", "MR-P"])
    @pytest.mark.parametrize("n_ranks", [1, 2, 4])
    def test_roundtrip_machine_precision(self, tmp_path, scheme, n_ranks):
        ck = str(tmp_path / "ck")
        clean = run_process(_spec(scheme, n_ranks), 10)
        # first leg writes a checkpoint at step 5, then "dies" at step 7
        run_process(_spec(scheme, n_ranks, checkpoint_dir=ck,
                          checkpoint_every=5), 7)
        resumed = run_process(_spec(scheme, n_ranks, resume_from=ck), 10)
        assert resumed.start_step == 5
        assert _max_err(resumed, clean) < 1e-12

    @pytest.mark.parametrize("scheme", ["ST", "MR-P"])
    @pytest.mark.parametrize("ranks", [(2, 3), (4, 2), (1, 4)])
    def test_resume_with_different_rank_count(self, tmp_path, scheme, ranks):
        write_ranks, read_ranks = ranks
        ck = str(tmp_path / "ck")
        clean = run_process(_spec(scheme, write_ranks), 12)
        run_process(_spec(scheme, write_ranks, checkpoint_dir=ck,
                          checkpoint_every=4), 9)
        resumed = run_process(_spec(scheme, read_ranks, resume_from=ck), 12)
        assert resumed.start_step == 8
        assert _max_err(resumed, clean) < 1e-12

    def test_resume_from_explicit_step_dir(self, tmp_path):
        ck = str(tmp_path / "ck")
        clean = run_process(_spec("MR-P", 2), 10)
        run_process(_spec("MR-P", 2, checkpoint_dir=ck, checkpoint_every=3,
                          checkpoint_keep=10), 10)
        step_dir = tmp_path / "ck" / "step-00000003"
        resumed = run_process(_spec("MR-P", 2,
                                    resume_from=str(step_dir)), 10)
        assert resumed.start_step == 3
        assert _max_err(resumed, clean) < 1e-12

    def test_resumed_solver_time_is_total_steps(self, tmp_path):
        from repro.parallel import ProcessRuntime

        ck = str(tmp_path / "ck")
        run_process(_spec("ST", 2, checkpoint_dir=ck, checkpoint_every=3), 5)
        runtime = ProcessRuntime(_spec("ST", 2, resume_from=ck))
        result = runtime.run(8)
        assert result.start_step == 3
        assert runtime.solver.time == 8


class TestCheckpointDirectoryContract:
    """Layout, markers, pruning and validation of the on-disk format."""

    def test_layout_and_manifest(self, tmp_path):
        ck = tmp_path / "ck"
        run_process(_spec("MR-P", 2, checkpoint_dir=str(ck),
                          checkpoint_every=4, checkpoint_keep=10), 9)
        dirs = sorted(p.name for p in ck.iterdir())
        assert dirs == ["step-00000004", "step-00000008"]
        step_dir = ck / "step-00000008"
        assert is_checkpoint_complete(step_dir)
        assert checkpoint_step(step_dir) == 8
        names = sorted(p.name for p in step_dir.iterdir())
        assert names == ["COMPLETE", "manifest.json", "rank0000.npz",
                         "rank0001.npz"]
        manifest = load_manifest_for_resume(step_dir)
        assert manifest["scheme"] == "MR-P"
        assert manifest["steps"] == 8
        assert manifest["extra"]["n_ranks"] == 2
        assert manifest["extra"]["backend"] == "process"

    def test_pruning_keeps_newest(self, tmp_path):
        ck = tmp_path / "ck"
        run_process(_spec("ST", 2, checkpoint_dir=str(ck),
                          checkpoint_every=2, checkpoint_keep=2), 9)
        dirs = sorted(p.name for p in ck.iterdir())
        assert dirs == ["step-00000006", "step-00000008"]

    def test_torn_checkpoint_is_ignored(self, tmp_path):
        ck = tmp_path / "ck"
        run_process(_spec("ST", 2, checkpoint_dir=str(ck),
                          checkpoint_every=3, checkpoint_keep=10), 7)
        newest = ck / "step-00000006"
        (newest / "COMPLETE").unlink()  # simulate a crash mid-write
        found = latest_checkpoint(ck)
        assert found is not None and checkpoint_step(found) == 3
        with pytest.raises(FileNotFoundError):
            load_manifest_for_resume(newest)

    def test_resume_validates_spec_compatibility(self, tmp_path):
        ck = str(tmp_path / "ck")
        run_process(_spec("MR-P", 2, checkpoint_dir=ck,
                          checkpoint_every=3), 5)
        for bad in (dict(scheme="ST"), dict(tau=0.9),
                    dict(shape=(32, 10))):
            spec = RunSpec("periodic", bad.get("scheme", "MR-P"), "D2Q9",
                           bad.get("shape", SHAPE_2D), 2,
                           tau=bad.get("tau", TAU), resume_from=ck)
            with pytest.raises(ValueError, match="checkpoint"):
                run_process(spec, 10)

    def test_resume_past_end_raises(self, tmp_path):
        ck = str(tmp_path / "ck")
        run_process(_spec("ST", 2, checkpoint_dir=ck, checkpoint_every=3), 5)
        with pytest.raises(ValueError, match="steps"):
            run_process(_spec("ST", 2, resume_from=ck), 3)

    def test_resume_from_empty_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            run_process(_spec("ST", 2,
                              resume_from=str(tmp_path / "nothing")), 5)

    def test_loaded_slabs_tile_the_domain(self, tmp_path):
        ck = tmp_path / "ck"
        run_process(_spec("MR-P", 4, checkpoint_dir=str(ck),
                          checkpoint_every=4), 5)
        manifest, slabs = load_distributed_checkpoint(
            latest_checkpoint(ck))
        assert [s["rank"] for s in slabs] == [0, 1, 2, 3]
        assert slabs[0]["start"] == 0
        assert slabs[-1]["stop"] == SHAPE_2D[0]
        validate_checkpoint_manifest(manifest, scheme="MR-P",
                                     lattice="D2Q9", shape=SHAPE_2D,
                                     tau=TAU)

    def test_no_shared_memory_leak(self, tmp_path):
        ck = str(tmp_path / "ck")
        run_process(_spec("ST", 2, checkpoint_dir=ck, checkpoint_every=2), 5)
        run_process(_spec("ST", 2, resume_from=ck), 8)
        if os.path.isdir("/dev/shm"):
            assert not [n for n in os.listdir("/dev/shm")
                        if n.startswith("mrlbm")]
