"""Integration: the multiprocess slab runtime vs the reference solvers.

Covers the acceptance bar of the runtime: machine-precision equivalence
with the single-domain solvers for every scheme, agreement (fields and
byte accounting) with the emulated backend, the merged telemetry report,
and the failure paths — worker exception propagation, barrier unwinding
and shared-memory cleanup (no leaked ``/dev/shm`` segments).
"""

import os

import numpy as np
import pytest

from repro.parallel import (
    ParallelRuntimeError,
    ProcessRuntime,
    RunSpec,
    run_process,
)
from repro.solver import channel_problem, periodic_problem
from repro.validation import taylor_green_fields

SCHEMES = ["ST", "MR-P", "MR-R"]


def _leaked_segments() -> list[str]:
    """Runtime-owned segments still present in /dev/shm."""
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux
        return []
    return [n for n in os.listdir(shm_dir) if n.startswith("mrlbm")]


class TestChannelEquivalence:
    """`--backend process` must match the single-domain solver exactly."""

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_matches_single_domain(self, scheme):
        shape, tau = (32, 14), 0.9
        spec = RunSpec("channel", scheme, "D2Q9", shape, 2, tau=tau,
                       options={"u_max": 0.04})
        result = run_process(spec, 6)
        ref = channel_problem(scheme, "D2Q9", shape, tau=tau, u_max=0.04,
                              bc_method="nebb", outlet_tangential="zero")
        ref.run(6)
        rr, ur = ref.macroscopic()
        assert np.abs(result.rho - rr).max() < 1e-13
        assert np.abs(result.u - ur).max() < 1e-13
        assert not _leaked_segments()

    def test_three_ranks_periodic_3d(self):
        shape, tau = (12, 6, 5), 0.8
        rng = np.random.default_rng(0)
        rho0 = 1 + 0.02 * rng.standard_normal(shape)
        u0 = 0.02 * rng.standard_normal((3, *shape))
        spec = RunSpec("periodic", "MR-P", "D3Q19", shape, 3, tau=tau,
                       options={"rho0": rho0, "u0": u0})
        result = run_process(spec, 4)
        ref = periodic_problem("MR-P", "D3Q19", shape, tau, rho0=rho0, u0=u0)
        ref.run(4)
        _, ur = ref.macroscopic()
        assert np.abs(result.u - ur).max() < 1e-13


class TestBackendAgreement:
    """The process and emulated backends are the same decomposition."""

    def test_single_rank_matches_emulated(self):
        shape, tau = (24, 10), 0.8
        rho0, u0 = taylor_green_fields(shape, 0.0, 0.1, 0.04)
        spec = RunSpec("periodic", "MR-R", "D2Q9", shape, 1, tau=tau,
                       options={"rho0": rho0, "u0": u0})
        result = run_process(spec, 5)
        emu = spec.build().run(5)
        rg, ug = emu.gather_macroscopic()
        assert np.abs(result.rho - rg).max() < 1e-14
        assert np.abs(result.u - ug).max() < 1e-14
        assert result.comm.bytes_sent == emu.comm.bytes_sent

    def test_comm_accounting_matches_emulated(self):
        shape = (30, 12)
        spec = RunSpec("periodic", "ST", "D2Q9", shape, 3, tau=0.8)
        result = run_process(spec, 4)
        emu = spec.build().run(4)
        assert result.comm.bytes_sent == emu.comm.bytes_sent
        assert result.comm.messages == emu.comm.messages
        assert result.comm.steps == emu.comm.steps == 4
        assert result.comm.bytes_per_step() == emu.comm.bytes_per_step()


class TestMergedReport:
    """Per-rank telemetry folds into one cohort report."""

    def test_report_structure(self):
        spec = RunSpec("periodic", "MR-P", "D2Q9", (24, 10), 2, tau=0.8)
        result = run_process(spec, 5)
        report = result.report
        assert report["n_ranks"] == 2
        assert report["steps"] == 5
        assert report["counters"]["steps"] == 10           # 2 ranks x 5
        assert len(report["mlups_per_rank"]) == 2
        assert report["mlups"] > 0
        # All interior fluid nodes are owned exactly once.
        assert report["n_fluid"] == 24 * 10
        for phase in ("step", "step/pack", "step/barrier", "step/unpack",
                      "step/compute", "step/publish"):
            assert report["phases"][phase]["calls"] > 0
        assert report["comm"]["bytes_per_step"] == pytest.approx(
            result.comm.bytes_per_step())

    def test_solver_time_and_comm_advance(self):
        spec = RunSpec("periodic", "ST", "D2Q9", (24, 10), 2, tau=0.8)
        runtime = ProcessRuntime(spec)
        runtime.run(3)
        assert runtime.solver.time == 3
        assert runtime.solver.comm.steps == 3


class TestFailurePaths:
    """Worker failures surface as structured errors, never deadlocks."""

    def test_injected_fault_propagates(self):
        spec = RunSpec("periodic", "MR-P", "D2Q9", (24, 10), 2, tau=0.8,
                       fault={"rank": 1, "step": 2})
        with pytest.raises(ParallelRuntimeError) as excinfo:
            run_process(spec, 6, run_timeout=120.0)
        failures = excinfo.value.failures
        assert any(f.rank == 1 and f.exc_type == "FaultInjected"
                   for f in failures)
        assert any(f.step == 2 for f in failures if f.rank == 1)
        assert "injected fault" in str(excinfo.value)

    def test_no_shared_memory_leak_on_abort(self):
        spec = RunSpec("periodic", "ST", "D2Q9", (24, 10), 3, tau=0.8,
                       fault={"rank": 0, "step": 0})
        with pytest.raises(ParallelRuntimeError):
            run_process(spec, 4, run_timeout=120.0)
        assert not _leaked_segments()

    def test_no_shared_memory_leak_on_success(self):
        spec = RunSpec("periodic", "ST", "D2Q9", (24, 10), 2, tau=0.8)
        run_process(spec, 2)
        assert not _leaked_segments()

    def test_bad_spec_kind_raises_locally(self):
        with pytest.raises(ValueError, match="unknown problem kind"):
            RunSpec("lid", "ST", "D2Q9", (24, 10), 2).build()
