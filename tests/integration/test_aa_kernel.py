"""Integration: AA-pattern virtual-GPU kernel vs the AA reference solver."""

import numpy as np
import pytest

from repro.geometry import periodic_box
from repro.gpu import AAKernel, KernelProblem, MemoryTracker, STKernel, V100
from repro.lattice import get_lattice
from repro.solver import AASolver


def setup(lattice_name, shape, tau=0.8, seed=9):
    lat = get_lattice(lattice_name)
    rng = np.random.default_rng(seed)
    rho0 = 1 + 0.03 * rng.standard_normal(shape)
    u0 = 0.03 * rng.standard_normal((lat.d, *shape))
    prob = KernelProblem(lat, shape, tau, mode="periodic")
    return lat, prob, rho0, u0


class TestEquivalence:
    @pytest.mark.parametrize("lattice_name,shape", [
        ("D2Q9", (18, 14)),
        ("D3Q19", (8, 7, 6)),
    ])
    def test_matches_reference_both_parities(self, lattice_name, shape):
        lat, prob, rho0, u0 = setup(lattice_name, shape)
        kernel = AAKernel(prob, V100, rho0=rho0, u0=u0)
        ref = AASolver(lat, periodic_box(shape), 0.8, rho0=rho0, u0=u0)
        for _ in range(5):
            kernel.step()
            ref.run(1)
            assert np.abs(kernel.distribution()
                          - ref._gathered_state()).max() < 1e-13

    def test_channel_mode_rejected(self):
        lat = get_lattice("D2Q9")
        prob = KernelProblem(lat, (12, 10), 0.8, mode="channel")
        with pytest.raises(ValueError, match="periodic"):
            AAKernel(prob, V100)


class TestTrafficAndFootprint:
    def test_traffic_matches_st_but_half_the_state(self):
        lat, prob, rho0, u0 = setup("D2Q9", (128, 128))
        results = {}
        for name, cls in (("AA", AAKernel), ("ST", STKernel)):
            tr = MemoryTracker(l2_bytes=int(V100.l2_kb * 1024))
            k = cls(prob, V100, tracker=tr, rho0=rho0, u0=u0)
            k.step()
            stats = k.step()
            results[name] = (stats.traffic.sector_bytes_total / stats.n_nodes,
                             k.global_state_bytes)
        aa_traffic, aa_state = results["AA"]
        st_traffic, st_state = results["ST"]
        assert aa_traffic == pytest.approx(st_traffic, rel=0.02)   # ~2Q x 8
        assert aa_state * 2 == st_state                            # Q vs 2Q

    def test_even_and_odd_steps_both_move_2q(self):
        lat, prob, *_ = setup("D2Q9", (64, 64))
        tr = MemoryTracker(l2_bytes=int(V100.l2_kb * 1024))
        k = AAKernel(prob, V100, tracker=tr)
        even = k.step()
        odd = k.step()
        n = 64 * 64
        for stats in (even, odd):
            per_node = stats.traffic.sector_bytes_total / n
            assert per_node == pytest.approx(144, rel=0.03)
        assert even.kernel_name.startswith("AA-even")
        assert odd.kernel_name.startswith("AA-odd")

    def test_odd_step_write_misalignment(self):
        """The odd flavour's scattered writes touch more sectors than the
        even flavour's aligned ones — AA's known coalescing penalty."""
        lat, prob, *_ = setup("D2Q9", (128, 128))
        k = AAKernel(prob, V100)        # raw sector counting, no L2
        even = k.step()
        odd = k.step()
        assert (odd.traffic.write_transactions
                >= even.traffic.write_transactions)
