"""Integration: power-law (non-Newtonian) channel flows.

The moment representation's gradient-free shear rate drives a per-node
adaptive relaxation time; steady force-driven channel profiles must match
the analytic Ostwald-de Waele solutions for shear-thinning (n < 1),
Newtonian (n = 1) and shear-thickening (n > 1) fluids.
"""

import numpy as np
import pytest

from repro.boundary import HalfwayBounceBack
from repro.geometry import channel_2d, periodic_box
from repro.lattice import get_lattice
from repro.solver.non_newtonian import (
    PowerLawMRPSolver,
    power_law_force,
    power_law_poiseuille_profile,
)


def run_power_law(n, K, u_max, shape=(8, 26), max_steps=120_000):
    lat = get_lattice("D2Q9")
    force = power_law_force(u_max, shape[1] - 2, K, n)
    solver = PowerLawMRPSolver(
        lat, channel_2d(*shape, with_io=False), tau=0.6,
        boundaries=[HalfwayBounceBack()],
        force=np.array([force, 0.0]),
        consistency=K, exponent=n,
    )
    solver.run_to_steady_state(tol=1e-11, check_interval=500,
                               max_steps=max_steps)
    return solver


class TestAnalyticProfiles:
    @pytest.mark.parametrize("n,K,u_max,tol", [
        (0.7, 0.05, 0.02, 5e-3),      # shear-thinning
        (1.0, 0.05, 0.02, 2e-3),      # Newtonian sanity
        (1.5, 0.36, 0.05, 5e-3),      # shear-thickening
    ])
    def test_profile(self, n, K, u_max, tol):
        solver = run_power_law(n, K, u_max)
        ux = solver.velocity()[0][4]
        ana = power_law_poiseuille_profile(solver.domain.shape[1], u_max, n)
        err = np.abs(ux[1:-1] - ana[1:-1]).max() / u_max
        assert err < tol, (n, err)

    def test_shear_thinning_blunter_than_parabola(self):
        """n < 1 flattens the core: u at quarter-height exceeds the
        Newtonian value for equal peak velocity."""
        prof_07 = power_law_poiseuille_profile(26, 1.0, 0.7)
        prof_10 = power_law_poiseuille_profile(26, 1.0, 1.0)
        quarter = 6
        assert prof_07[quarter] > prof_10[quarter]

    def test_viscosity_field_structure(self):
        """Shear-thinning: apparent viscosity is lowest at the walls
        (highest shear) and highest at the centreline."""
        solver = run_power_law(0.7, 0.05, 0.02)
        nu = solver.apparent_viscosity()[4, 1:-1]
        mid = nu.size // 2
        assert nu[mid] > 1.5 * nu[0]
        assert nu[mid] > 1.5 * nu[-1]

    def test_newtonian_limit_matches_mrp(self):
        """n = 1 reproduces the plain MR-P solver exactly at steady state."""
        from repro.validation import poiseuille_profile

        solver = run_power_law(1.0, 0.05, 0.02)
        ana = poiseuille_profile(26, 0.02)
        err = np.abs(solver.velocity()[0][4, 1:-1] - ana[1:-1]).max() / 0.02
        assert err < 2e-3


class TestConstruction:
    def test_validation(self):
        lat = get_lattice("D2Q9")
        box = periodic_box((6, 6))
        with pytest.raises(ValueError, match="consistency"):
            PowerLawMRPSolver(lat, box, 0.8, consistency=-1.0)
        with pytest.raises(ValueError, match="flow index"):
            PowerLawMRPSolver(lat, box, 0.8, exponent=0.0)
        with pytest.raises(ValueError, match="bounds"):
            PowerLawMRPSolver(lat, box, 0.8, nu_bounds=(0.1, 0.01))

    def test_conservation(self):
        lat = get_lattice("D2Q9")
        rng = np.random.default_rng(0)
        u0 = 0.03 * rng.standard_normal((2, 8, 8))
        s = PowerLawMRPSolver(lat, periodic_box((8, 8)), 0.7,
                              consistency=0.05, exponent=0.8, u0=u0)
        m0 = s.diagnostics.mass()
        p0 = s.diagnostics.momentum()
        s.run(20)
        assert s.diagnostics.mass() == pytest.approx(m0, rel=1e-12)
        assert np.allclose(s.diagnostics.momentum(), p0, atol=1e-12)

    def test_tau_field_shape_and_bounds(self):
        lat = get_lattice("D2Q9")
        s = PowerLawMRPSolver(lat, periodic_box((8, 8)), 0.7,
                              consistency=0.05, exponent=0.7)
        s.run(3)
        assert s.tau_field.shape == (8, 8)
        nu = s.apparent_viscosity()
        assert (nu >= s.nu_bounds[0] - 1e-15).all()
        assert (nu <= s.nu_bounds[1] + 1e-15).all()
