"""Fused fast-path backend inside the distributed slab runtime."""

import numpy as np
import pytest

from repro.parallel import RunSpec
from repro.validation import taylor_green_fields


def build_spec(kind, scheme, ranks, accel="reference"):
    shape = (30, 18)
    if kind == "channel":
        opts = {"u_max": 0.04, "bc_method": "nebb"}
    elif kind == "forced-channel":
        opts = {"u_max": 0.04}
    else:
        nu = (0.8 - 0.5) / 3.0
        rho0, u0 = taylor_green_fields(shape, 0.0, nu, 0.04)
        opts = {"rho0": rho0, "u0": u0}
    return RunSpec(kind, scheme, "D2Q9", shape, ranks, tau=0.8,
                   options=opts, accel=accel)


class TestEmulatedFusedParity:
    @pytest.mark.parametrize("kind", ["channel", "periodic", "forced-channel"])
    @pytest.mark.parametrize("scheme", ["ST", "MR-P", "MR-R"])
    def test_matches_reference_ranks(self, kind, scheme):
        """Per-rank fused cores reproduce the reference slab trajectory."""
        ref = build_spec(kind, scheme, 3).build()
        fused = build_spec(kind, scheme, 3, accel="fused").build()
        ref.run(10)
        fused.run(10)
        rho_r, u_r = ref.gather_macroscopic()
        rho_f, u_f = fused.gather_macroscopic()
        assert np.abs(rho_r - rho_f).max() < 1e-13
        assert np.abs(u_r - u_f).max() < 1e-13

    def test_fused_rank_count_invariance(self):
        """The fused trajectory is independent of the slab count."""
        two = build_spec("channel", "MR-P", 2, accel="fused").build()
        five = build_spec("channel", "MR-P", 5, accel="fused").build()
        two.run(12)
        five.run(12)
        rho_2, u_2 = two.gather_macroscopic()
        rho_5, u_5 = five.gather_macroscopic()
        assert np.abs(rho_2 - rho_5).max() < 1e-13
        assert np.abs(u_2 - u_5).max() < 1e-13

    def test_numba_rejected_for_distributed(self):
        with pytest.raises(ValueError, match="numba"):
            build_spec("channel", "ST", 2, accel="numba").build()

    @pytest.mark.parametrize("scheme", ["ST", "MR-P", "MR-R"])
    def test_forced_channel_matches_single_domain(self, scheme):
        """The distributed forced channel reproduces the single solver."""
        from repro.solver import forced_channel_problem

        dist = build_spec("forced-channel", scheme, 3, accel="fused").build()
        ref = forced_channel_problem(scheme, "D2Q9", (30, 18), tau=0.8,
                                     u_max=0.04)
        dist.run(15)
        ref.run(15)
        rho_d, u_d = dist.gather_macroscopic()
        rho_r, u_r = ref.macroscopic()
        assert np.abs(rho_d - rho_r).max() < 1e-13
        assert np.abs(u_d - u_r).max() < 1e-13


class TestEmulatedInplaceParity:
    """The single-lattice ``aa`` backend inside the slab runtime.

    Distributed aa ranks run the conservative natural-layout step every
    step (halo exchange and checkpoints see natural arrays), so they
    must match the reference ranks exactly. The runtime drops the
    per-rank scratch lattice; boundary-free MR ranks then really run
    one distribution buffer lighter, while ST ranks trade it for the
    core-owned scratch (neutral — the conservative fallback still
    needs a gather target).
    """

    @pytest.mark.parametrize("kind", ["channel", "periodic", "forced-channel"])
    @pytest.mark.parametrize("scheme", ["ST", "MR-P", "MR-R"])
    def test_matches_reference_ranks(self, kind, scheme):
        ref = build_spec(kind, scheme, 3).build()
        aa = build_spec(kind, scheme, 3, accel="aa").build()
        ref.run(10)
        aa.run(10)
        rho_r, u_r = ref.gather_macroscopic()
        rho_a, u_a = aa.gather_macroscopic()
        assert np.abs(rho_r - rho_a).max() < 1e-13
        assert np.abs(u_r - u_a).max() < 1e-13

    def test_aa_ranks_drop_scratch_lattice(self):
        """aa ranks allocate no second lattice (the footprint saving)."""
        dist = build_spec("periodic", "ST", 2, accel="aa").build()
        assert all(state.scratch is None for state in dist.ranks)
        fused = build_spec("periodic", "ST", 2, accel="fused").build()
        assert all(state.scratch is not None for state in fused.ranks)


class TestProcessFused:
    def test_process_backend_runs_fused(self):
        """Real worker processes honour RunSpec.accel and report it."""
        from repro.parallel import run_process

        res = run_process(build_spec("channel", "MR-P", 2, accel="fused"), 8)
        ref = build_spec("channel", "MR-P", 2).build()
        ref.run(8)
        rho_r, u_r = ref.gather_macroscopic()
        assert np.abs(res.rho - rho_r).max() < 1e-13
        assert np.abs(res.u - u_r).max() < 1e-13
        assert all(rec["accel"] == "fused" for rec in res.per_rank)
