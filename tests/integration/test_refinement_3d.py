"""Integration: 3D two-level grid refinement (D3Q19 x-band)."""

import numpy as np
import pytest

from repro.refinement import RefinedSimulation3D
from repro.solver import periodic_problem
from repro.validation import relative_l2_error, taylor_green_fields


def extruded_tg(shape, t, nu, amp):
    """2D Taylor-Green extruded along z (analytic in 3D)."""
    rho2, u2 = taylor_green_fields(shape[:2], t, nu, amp)
    rho = np.repeat(rho2[:, :, None], shape[2], axis=2)
    u = np.zeros((3, *shape))
    u[0] = np.repeat(u2[0][:, :, None], shape[2], axis=2)
    u[1] = np.repeat(u2[1][:, :, None], shape[2], axis=2)
    return rho, u


class TestInterface3D:
    def test_uniform_flow_exact(self):
        shape, band = (24, 10, 8), (8, 16)
        u0 = np.zeros((3, *shape))
        u0[0], u0[1], u0[2] = 0.03, -0.015, 0.01
        r = RefinedSimulation3D(shape, band, 0.8, u0=u0)
        r.run(6)
        _, u = r.coarse_macroscopic()
        for a, val in enumerate((0.03, -0.015, 0.01)):
            assert np.abs(u[a] - val).max() < 1e-13
        _, u_f = r.fine_macroscopic()
        assert np.abs(u_f[0] - 0.03).max() < 1e-13

    def test_validation(self):
        with pytest.raises(ValueError, match="band"):
            RefinedSimulation3D((16, 8, 8), (0, 8), 0.8)
        with pytest.raises(ValueError, match="scheme"):
            RefinedSimulation3D((16, 8, 8), (4, 10), 0.8, scheme="ST")
        with pytest.raises(ValueError, match="tau"):
            RefinedSimulation3D((16, 8, 8), (4, 10), 0.5)


class TestAccuracy3D:
    @pytest.mark.parametrize("scheme", ["MR-P", "MR-R"])
    def test_extruded_taylor_green(self, scheme):
        """The refined 3D run tracks the analytic solution at least as
        well as the unrefined solver (no interface drift)."""
        shape, band, tau, amp = (32, 32, 8), (10, 22), 0.8, 0.03
        nu = (tau - 0.5) / 3.0
        rho0, u0 = extruded_tg(shape, 0.0, nu, amp)
        r = RefinedSimulation3D(shape, band, tau, rho0=rho0, u0=u0,
                                scheme=scheme)
        plain = periodic_problem(scheme, "D3Q19", shape, tau,
                                 rho0=rho0, u0=u0)
        for _ in range(2):
            r.run(50)
            plain.run(50)
            _, u_ana = extruded_tg(shape, float(r.time), nu, amp)
            e_ref = relative_l2_error(r.coarse_macroscopic()[1], u_ana)
            e_pln = relative_l2_error(plain.velocity(), u_ana)
            assert e_ref < 1.3 * e_pln + 5e-4, (scheme, r.time, e_ref, e_pln)

    def test_z_invariance_preserved(self):
        """An extruded flow must stay z-invariant through the interface."""
        shape, band, tau, amp = (32, 32, 8), (10, 22), 0.8, 0.02
        nu = (tau - 0.5) / 3.0
        rho0, u0 = extruded_tg(shape, 0.0, nu, amp)
        r = RefinedSimulation3D(shape, band, tau, rho0=rho0, u0=u0)
        r.run(40)
        _, u = r.coarse_macroscopic()
        z_spread = np.abs(u - u[:, :, :, :1]).max()
        assert z_spread < 1e-12
        assert np.abs(u[2]).max() < 1e-12
