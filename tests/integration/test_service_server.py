"""End-to-end tests for the async job server (``mrlbm serve``).

The server runs on a dedicated event-loop thread (the suite has no
async test runner) and the blocking :class:`ServiceClient` — the same
one behind ``mrlbm submit``/``jobs`` — talks to it over a real TCP
socket, so these tests cover the full wire path: HTTP parsing, payload
validation, scheduling, dedup, fault-tolerant execution and event
streaming.
"""

import asyncio
import threading

import numpy as np
import pytest

from repro.service import JobScheduler, JobServer, ServiceClient, ServiceError


class ServerThread:
    """A JobServer + scheduler running on its own event-loop thread."""

    def __init__(self, root, workers=2):
        self.root = root
        self.workers = workers
        self.address = None
        self.scheduler = None
        self._thread = None

    def __enter__(self):
        started = threading.Event()

        def runner():
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)

            async def main():
                self.scheduler = JobScheduler(self.root,
                                              workers=self.workers)
                server = JobServer(self.scheduler, port=0)
                await server.start()
                self.address = server.address
                started.set()
                await server.serve_forever()
                await server.close()

            loop.run_until_complete(main())
            loop.close()

        self._thread = threading.Thread(target=runner, daemon=True)
        self._thread.start()
        assert started.wait(10), "server failed to start"
        return self

    def __exit__(self, *exc):
        try:
            ServiceClient(self.address, timeout=5).shutdown()
        except Exception:
            pass
        self._thread.join(60)


def payload(**overrides):
    """A small forced-channel submission; overrides patch fields."""
    base = {"kind": "forced-channel", "scheme": "MR-P", "lattice": "D2Q9",
            "shape": [24, 14], "steps": 40, "tau": 0.8, "n_ranks": 1,
            "options": {"u_max": 0.03}}
    base.update(overrides)
    return base


class TestLifecycle:
    """submit -> poll -> result, and the sealed job directory."""

    def test_submit_poll_result(self, tmp_path):
        with ServerThread(tmp_path / "jobs") as srv:
            client = ServiceClient(srv.address)
            assert client.health()["ok"]
            reply = client.submit(payload())
            assert reply["created"] is True
            assert reply["job"]["state"] in ("queued", "running")
            job = client.wait(reply["job"]["id"], timeout_s=120)
            assert job["state"] == "done"
            result = client.result(job["id"])["result"]
            assert result["steps"] == 40
            assert result["mlups"] > 0
            job_dir = tmp_path / "jobs" / job["id"]
            assert (job_dir / "COMPLETE").exists()
            assert (job_dir / "manifest.json").exists()
            fields = np.load(job_dir / "fields.npz")
            assert np.all(np.isfinite(fields["u"]))

    def test_result_conflicts_until_done(self, tmp_path):
        with ServerThread(tmp_path / "jobs") as srv:
            client = ServiceClient(srv.address)
            job = client.submit(payload(steps=200))["job"]
            if client.job(job["id"])["state"] in ("queued", "running"):
                with pytest.raises(ServiceError) as err:
                    client.result(job["id"])
                assert err.value.status == 409
            client.wait(job["id"], timeout_s=120)
            assert client.result(job["id"])["result"]["steps"] == 200

    def test_kinds_endpoint(self, tmp_path):
        with ServerThread(tmp_path / "jobs") as srv:
            kinds = ServiceClient(srv.address).kinds()
            assert "forced-channel" in kinds and "cylinder" in kinds


class TestValidation:
    """Bad submissions come back as HTTP 400, not server errors."""

    def test_unknown_kind_400(self, tmp_path):
        with ServerThread(tmp_path / "jobs") as srv:
            with pytest.raises(ServiceError) as err:
                ServiceClient(srv.address).submit(
                    payload(kind="no-such-problem"))
            assert err.value.status == 400
            assert "unknown problem kind" in str(err.value)

    def test_unknown_field_400(self, tmp_path):
        with ServerThread(tmp_path / "jobs") as srv:
            with pytest.raises(ServiceError) as err:
                ServiceClient(srv.address).submit(payload(typo_field=1))
            assert err.value.status == 400
            assert "typo_field" in str(err.value)

    def test_missing_steps_400(self, tmp_path):
        with ServerThread(tmp_path / "jobs") as srv:
            bad = payload()
            del bad["steps"]
            with pytest.raises(ServiceError) as err:
                ServiceClient(srv.address).submit(bad)
            assert err.value.status == 400

    def test_unknown_job_404(self, tmp_path):
        with ServerThread(tmp_path / "jobs") as srv:
            with pytest.raises(ServiceError) as err:
                ServiceClient(srv.address).job("job-999999")
            assert err.value.status == 404


class TestDedupAndConcurrency:
    """Fingerprint dedup and the bounded worker pool."""

    def test_identical_resubmission_served_from_cache(self, tmp_path):
        with ServerThread(tmp_path / "jobs") as srv:
            client = ServiceClient(srv.address)
            first = client.submit(payload())
            client.wait(first["job"]["id"], timeout_s=120)
            second = client.submit(payload())
            assert second["created"] is False
            assert second["job"]["id"] == first["job"]["id"]
            assert second["job"]["state"] == "done"
            assert second["job"]["hits"] == 1
            # the cached hit must not have re-executed anything
            assert client.health()["runs_executed"] == 1

    def test_different_steps_not_coalesced(self, tmp_path):
        with ServerThread(tmp_path / "jobs") as srv:
            client = ServiceClient(srv.address)
            a = client.submit(payload(steps=40))["job"]
            b = client.submit(payload(steps=80))["job"]
            assert a["id"] != b["id"]
            assert a["key"] != b["key"]

    def test_two_concurrent_jobs_two_workers(self, tmp_path):
        with ServerThread(tmp_path / "jobs", workers=2) as srv:
            client = ServiceClient(srv.address)
            a = client.submit(payload(steps=300))["job"]
            b = client.submit(payload(scheme="ST", steps=300))["job"]
            done_a = client.wait(a["id"], timeout_s=120)
            done_b = client.wait(b["id"], timeout_s=120)
            assert done_a["state"] == done_b["state"] == "done"
            # with two workers the runs overlap in wall-clock time
            assert done_a["started_unix"] < done_b["finished_unix"]
            assert done_b["started_unix"] < done_a["finished_unix"]
            assert client.health()["runs_executed"] == 2

    def test_cache_survives_scheduler_restart(self, tmp_path):
        root = tmp_path / "jobs"
        with ServerThread(root) as srv:
            client = ServiceClient(srv.address)
            first = client.submit(payload())
            client.wait(first["job"]["id"], timeout_s=120)
        with ServerThread(root) as srv:
            client = ServiceClient(srv.address)
            reply = client.submit(payload())
            assert reply["created"] is False
            assert reply["job"]["state"] == "done"
            assert reply["job"]["id"] == first["job"]["id"]
            assert client.health()["runs_executed"] == 0
            assert client.result(reply["job"]["id"])["result"]["steps"] == 40


class TestFaultTolerance:
    """Jobs inherit the runtime's supervised retry."""

    def test_worker_death_retried_from_checkpoint(self, tmp_path):
        with ServerThread(tmp_path / "jobs") as srv:
            client = ServiceClient(srv.address)
            job = client.submit(payload(
                n_ranks=2, steps=20, checkpoint_every=8, max_restarts=2,
                fault={"rank": 1, "step": 12, "kind": "kill",
                       "attempt": 0}))["job"]
            done = client.wait(job["id"], timeout_s=180)
            assert done["state"] == "done", done
            result = client.result(job["id"])["result"]
            assert result["restarts"] == 1
            assert result["steps"] == 20

    def test_permanent_failure_reported_and_retryable(self, tmp_path):
        with ServerThread(tmp_path / "jobs") as srv:
            client = ServiceClient(srv.address)
            bad = payload(n_ranks=2, steps=20,
                          fault={"rank": 0, "step": 3, "kind": "exception",
                                 "attempt": None})
            job = client.submit(bad)["job"]
            done = client.wait(job["id"], timeout_s=180)
            assert done["state"] == "failed"
            assert done["error"]
            # a failed key is cleared: resubmitting creates a NEW job
            assert client.submit(bad)["created"] is True


class TestEventStreaming:
    """/jobs/<id>/events tails the per-rank event bus."""

    def test_follow_streams_until_done(self, tmp_path):
        with ServerThread(tmp_path / "jobs") as srv:
            client = ServiceClient(srv.address)
            job = client.submit(payload(steps=100))["job"]
            events = list(client.events(job["id"], follow=True))
            kinds = {e.get("kind") for e in events}
            assert "start" in kinds and "end" in kinds
            assert client.job(job["id"])["state"] == "done"

    def test_snapshot_without_follow(self, tmp_path):
        with ServerThread(tmp_path / "jobs") as srv:
            client = ServiceClient(srv.address)
            job = client.submit(payload())["job"]
            client.wait(job["id"], timeout_s=120)
            events = list(client.events(job["id"]))
            assert {e.get("kind") for e in events} >= {"start", "end"}
