"""Integration: distributed slab decomposition vs single-domain solvers."""

import numpy as np
import pytest

from repro.parallel import (
    DistributedST,
    SlabDecomposition,
    distributed_channel_problem,
    distributed_periodic_problem,
)
from repro.solver import channel_problem, forced_channel_problem, periodic_problem
from repro.validation import taylor_green_fields

SCHEMES = ["ST", "MR-P", "MR-R"]


class TestSlabDecomposition:
    def test_bounds_cover_domain(self):
        d = SlabDecomposition((17, 8), 4, periodic=True)
        covered = []
        for r in range(4):
            start, stop = d.bounds(r)
            covered.extend(range(start, stop))
        assert covered == list(range(17))

    def test_uneven_split(self):
        d = SlabDecomposition((10, 4), 3, periodic=False)
        widths = [d.bounds(r)[1] - d.bounds(r)[0] for r in range(3)]
        assert sorted(widths) == [3, 3, 4]

    def test_neighbour_topology(self):
        d = SlabDecomposition((12, 4), 3, periodic=False)
        assert not d.has_left(0) and d.has_right(0)
        assert d.has_left(2) and not d.has_right(2)
        dp = SlabDecomposition((12, 4), 3, periodic=True)
        assert dp.has_left(0) and dp.has_right(2)
        assert dp.left_of(0) == 2 and dp.right_of(2) == 0

    def test_too_many_ranks(self):
        with pytest.raises(ValueError, match="slabs"):
            SlabDecomposition((8, 4), 4, periodic=True)


class TestPeriodicEquivalence:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("n_ranks", [1, 2, 3])
    def test_matches_reference_2d(self, scheme, n_ranks):
        shape, tau = (30, 12), 0.8
        rho0, u0 = taylor_green_fields(shape, 0.0, 0.1, 0.04)
        ref = periodic_problem(scheme, "D2Q9", shape, tau, rho0=rho0, u0=u0)
        dist = distributed_periodic_problem(scheme, "D2Q9", shape, n_ranks,
                                            tau, rho0=rho0, u0=u0)
        ref.run(6)
        dist.run(6)
        rg, ug = dist.gather_macroscopic()
        rr, ur = ref.macroscopic()
        assert np.abs(rg - rr).max() < 1e-13
        assert np.abs(ug - ur).max() < 1e-13

    @pytest.mark.parametrize("scheme", ["ST", "MR-P"])
    def test_matches_reference_3d(self, scheme):
        shape, tau = (12, 6, 5), 0.8
        rng = np.random.default_rng(0)
        rho0 = 1 + 0.02 * rng.standard_normal(shape)
        u0 = 0.02 * rng.standard_normal((3, *shape))
        ref = periodic_problem(scheme, "D3Q19", shape, tau, rho0=rho0, u0=u0)
        dist = distributed_periodic_problem(scheme, "D3Q19", shape, 3, tau,
                                            rho0=rho0, u0=u0)
        ref.run(4)
        dist.run(4)
        rg, ug = dist.gather_macroscopic()
        rr, ur = ref.macroscopic()
        assert np.abs(ug - ur).max() < 1e-13

    def test_full_vs_crossing_exchange_identical_physics(self):
        shape, tau = (24, 10), 0.8
        rho0, u0 = taylor_green_fields(shape, 0.0, 0.1, 0.04)
        a = distributed_periodic_problem("ST", "D2Q9", shape, 3, tau,
                                         rho0=rho0, u0=u0,
                                         st_exchange="crossing")
        b = distributed_periodic_problem("ST", "D2Q9", shape, 3, tau,
                                         rho0=rho0, u0=u0, st_exchange="full")
        a.run(5)
        b.run(5)
        assert np.abs(a.gather_macroscopic()[1]
                      - b.gather_macroscopic()[1]).max() < 1e-14
        assert a.comm.bytes_sent < b.comm.bytes_sent


class TestChannelEquivalence:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("n_ranks", [2, 4])
    def test_matches_reference(self, scheme, n_ranks):
        shape = (32, 14)
        ref = channel_problem(scheme, "D2Q9", shape, tau=0.9, u_max=0.04,
                              bc_method="nebb", outlet_tangential="zero")
        dist = distributed_channel_problem(scheme, "D2Q9", shape, n_ranks,
                                           tau=0.9, u_max=0.04)
        ref.run(6)
        dist.run(6)
        rg, ug = dist.gather_macroscopic()
        rr, ur = ref.macroscopic()
        assert np.abs(ug - ur).max() < 1e-13

    def test_forced_periodic_distributed(self):
        """Body forcing works across slabs: exact momentum budget."""
        fx = 1e-4
        dist = distributed_periodic_problem(
            "MR-P", "D2Q9", (18, 12), 3, 0.9, force=np.array([fx, 0.0])
        )
        dist.run(5)
        _, u = dist.gather_macroscopic()
        px = u[0].sum()          # rho = 1: momentum = N fx (steps + 1/2)
        assert px == pytest.approx(18 * 12 * fx * 5.5, rel=1e-8)

    def test_forced_channel_distributed_matches_reference(self):
        ref = forced_channel_problem("ST", "D2Q9", (18, 12), tau=0.9,
                                     u_max=0.03)
        fx = ref.force[0].max()
        from repro.parallel import DistributedST
        from repro.geometry import channel_2d
        from repro.boundary import HalfwayBounceBack
        from repro.lattice import get_lattice

        dist = DistributedST(
            get_lattice("D2Q9"), channel_2d(18, 12, with_io=False), 0.9,
            n_ranks=3, periodic_axis0=True,
            boundary_factory=lambda r, t: [HalfwayBounceBack()],
            force=np.array([fx, 0.0]),
        )
        ref.run(30)
        dist.run(30)
        rg, ug = dist.gather_macroscopic()
        rr, ur = ref.macroscopic()
        assert np.abs(ug - ur).max() < 1e-13


class TestCommunicationVolume:
    def test_payload_sizes(self):
        """ST exchanges crossing populations; MR exchanges moments."""
        shape = (24, 10)
        st = distributed_periodic_problem("ST", "D2Q9", shape, 2, 0.8)
        mr = distributed_periodic_problem("MR-P", "D2Q9", shape, 2, 0.8)
        full = distributed_periodic_problem("ST", "D2Q9", shape, 2, 0.8,
                                            st_exchange="full")
        # Per face, both directions: 2 x q_cross / 2 x M / 2 x Q values.
        assert st.communication_values_per_face() == 2 * 3 * 10
        assert mr.communication_values_per_face() == 2 * 6 * 10
        assert full.communication_values_per_face() == 2 * 9 * 10

    def test_bytes_accounting(self):
        shape = (24, 10)
        d = distributed_periodic_problem("MR-P", "D2Q9", shape, 3, 0.8)
        d.run(4)
        # 3 ranks x 2 faces each x 6 moments x 10 face nodes x 8 B x 4 steps.
        assert d.comm.bytes_sent == 3 * 2 * 6 * 10 * 8 * 4
        assert d.comm.steps == 4
        assert d.comm.bytes_per_step() == 3 * 2 * 6 * 10 * 8

    def test_mr_beats_naive_full_exchange_3d(self):
        """The compression argument on the wire: M=10 < Q=19."""
        shape = (12, 6, 5)
        mr = distributed_periodic_problem("MR-P", "D3Q19", shape, 2, 0.8)
        full = distributed_periodic_problem("ST", "D3Q19", shape, 2, 0.8,
                                            st_exchange="full")
        crossing = distributed_periodic_problem("ST", "D3Q19", shape, 2, 0.8)
        assert (mr.communication_values_per_face()
                < full.communication_values_per_face())
        # ...but crossing-only ST is leaner still (5 < 10): MR trades
        # wire volume for recomputation only vs naive implementations.
        assert (crossing.communication_values_per_face()
                < mr.communication_values_per_face())
