"""Integration: physical correctness of all three schemes.

Every scheme must solve the same flows to the same accuracy: the moment
representation is a reformulation, not a new physical model.
"""

import numpy as np
import pytest

from repro.solver import channel_problem, periodic_problem
from repro.validation import (
    kinetic_energy,
    linf_error,
    poiseuille_profile,
    relative_l2_error,
    taylor_green_decay_rate,
    taylor_green_fields,
)

SCHEMES = ["ST", "MR-P", "MR-R"]


class TestTaylorGreen2D:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_velocity_field_accuracy(self, scheme):
        shape, tau, u0 = (48, 48), 0.8, 0.03
        nu = (tau - 0.5) / 3
        rho_i, u_i = taylor_green_fields(shape, 0.0, nu, u0)
        s = periodic_problem(scheme, "D2Q9", shape, tau, rho0=rho_i, u0=u_i)
        s.run(200)
        _, u_ref = taylor_green_fields(shape, 200.0, nu, u0)
        assert relative_l2_error(s.velocity(), u_ref) < 5e-3

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_viscous_decay_rate(self, scheme):
        shape, tau, u0 = (64, 64), 0.7, 0.02
        nu = (tau - 0.5) / 3
        rho_i, u_i = taylor_green_fields(shape, 0.0, nu, u0)
        s = periodic_problem(scheme, "D2Q9", shape, tau, rho0=rho_i, u0=u_i)
        e0 = kinetic_energy(*s.macroscopic())
        s.run(300)
        e1 = kinetic_energy(*s.macroscopic())
        rate = -np.log(e1 / e0) / 300
        assert rate == pytest.approx(taylor_green_decay_rate(shape, nu), rel=0.02)

    def test_grid_convergence_second_order(self):
        """Halving the grid spacing reduces the TG error ~4x (diffusive
        scaling: compare at equal physical time)."""
        errors = {}
        for n in (24, 48):
            tau = 0.8
            nu = (tau - 0.5) / 3
            steps = int(200 * (n / 48) ** 2)     # diffusive time scaling
            rho_i, u_i = taylor_green_fields((n, n), 0.0, nu, 0.02)
            s = periodic_problem("MR-P", "D2Q9", (n, n), tau,
                                 rho0=rho_i, u0=u_i)
            s.run(steps)
            _, u_ref = taylor_green_fields((n, n), float(steps), nu, 0.02)
            errors[n] = relative_l2_error(s.velocity(), u_ref)
        order = np.log2(errors[24] / errors[48])
        assert order > 1.5

    def test_schemes_agree_with_each_other(self):
        shape, tau = (32, 32), 0.9
        nu = (tau - 0.5) / 3
        rho_i, u_i = taylor_green_fields(shape, 0.0, nu, 0.02)
        fields = {}
        for scheme in SCHEMES:
            s = periodic_problem(scheme, "D2Q9", shape, tau, rho0=rho_i, u0=u_i)
            s.run(100)
            fields[scheme] = s.velocity()
        # Regularized schemes filter ghost modes; all must stay close.
        assert relative_l2_error(fields["MR-P"], fields["ST"]) < 2e-3
        assert relative_l2_error(fields["MR-R"], fields["MR-P"]) < 2e-3


class TestChannelPoiseuille2D:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("bc", ["regularized-fd", "nebb"])
    def test_steady_profile(self, scheme, bc):
        shape, u_max = (48, 26), 0.04
        s = channel_problem(scheme, "D2Q9", shape, tau=0.9, u_max=u_max,
                            bc_method=bc)
        s.run_to_steady_state(tol=1e-9, check_interval=200, max_steps=40_000)
        ux = s.velocity()[0]
        analytic = poiseuille_profile(shape[1], u_max)
        err = linf_error(ux[shape[0] // 2, 1:-1], analytic[1:-1]) / u_max
        assert err < 7e-3, (scheme, bc, err)

    def test_streamwise_invariance(self):
        """Developed flow: the profile must not vary along the channel."""
        s = channel_problem("MR-P", "D2Q9", (60, 22), tau=0.9, u_max=0.04)
        s.run_to_steady_state(tol=1e-9, check_interval=200, max_steps=40_000)
        ux = s.velocity()[0]
        mid = ux[30, 1:-1]
        for x in (15, 45):
            assert np.allclose(ux[x, 1:-1], mid, atol=5e-4)

    def test_mass_flux_constant_along_channel(self):
        s = channel_problem("ST", "D2Q9", (48, 20), tau=0.9, u_max=0.04)
        s.run_to_steady_state(tol=1e-8, check_interval=200, max_steps=40_000)
        rho, u = s.macroscopic()
        flux = (rho * u[0])[:, 1:-1].sum(axis=1)
        assert flux[5:-5].std() / flux[5:-5].mean() < 1e-3


class TestChannel3D:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_duct_flow_develops(self, scheme):
        from repro.validation import duct_profile

        shape, u_max = (24, 14, 14), 0.04
        s = channel_problem(scheme, "D3Q19", shape, tau=0.9, u_max=u_max)
        s.run(2500)
        ux = s.velocity()[0]
        mid = ux[shape[0] // 2]
        analytic = duct_profile(shape[1], shape[2], u_max)
        err = relative_l2_error(mid[1:-1, 1:-1], analytic[1:-1, 1:-1])
        assert err < 5e-2, (scheme, err)

    def test_no_slip_at_duct_walls(self):
        s = channel_problem("MR-R", "D3Q19", (16, 10, 10), tau=0.9, u_max=0.04)
        s.run(500)
        u = s.velocity()
        speed = np.sqrt((u ** 2).sum(axis=0))
        # Wall nodes are pinned; check the first fluid layer is slow.
        assert speed[8, 1, :].max() < 0.02


class TestStability:
    def test_regularization_stabilizes_underresolved_flow(self):
        """At low tau and coarse resolution, BGK blows up earlier than the
        regularized schemes — the stability motivation of Section 2."""
        shape = (24, 24)
        tau = 0.505                        # very low viscosity
        rng = np.random.default_rng(5)
        u0 = 0.12 * rng.standard_normal((2, *shape))   # aggressive IC

        def survives(scheme, steps=400):
            s = periodic_problem(scheme, "D2Q9", shape, tau, u0=u0)
            try:
                s.run(steps)
            except FloatingPointError:
                return False
            rho = s.density()
            return bool(np.isfinite(rho).all() and rho.min() > 0)

        with np.errstate(all="ignore"):
            bgk_ok = survives("ST")
            mrr_ok = survives("MR-R")
        assert mrr_ok, "recursive regularization should survive"
        if bgk_ok:
            pytest.skip("BGK survived this IC too; stability margin case")
