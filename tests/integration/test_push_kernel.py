"""Integration: push-configuration ST kernel vs pull reference.

State convention: the push kernel's lattice holds the post-stream,
post-boundary field, so after n steps it equals one stream+boundary
application of the pull solver's post-collision state.
"""

import numpy as np
import pytest

from repro.core import stream_pull
from repro.gpu import KernelProblem, MemoryTracker, STKernel, STPushKernel, V100
from repro.lattice import get_lattice
from repro.solver import channel_problem, periodic_problem
from repro.solver.presets import channel_inlet_profile
from repro.validation import taylor_green_fields


def expected_push_state(ref):
    """stream+boundary applied to the pull solver's current state."""
    exp = stream_pull(ref.lat, ref.f)
    for b in ref.boundaries:
        b.post_stream(ref.lat, exp, ref.f)
    return exp


class TestEquivalence:
    @pytest.mark.parametrize("lattice_name,shape", [
        ("D2Q9", (20, 16)),
        ("D3Q19", (10, 8, 6)),
    ])
    def test_periodic(self, lattice_name, shape):
        lat = get_lattice(lattice_name)
        rng = np.random.default_rng(4)
        rho0 = 1 + 0.03 * rng.standard_normal(shape)
        u0 = 0.03 * rng.standard_normal((lat.d, *shape))
        ref = periodic_problem("ST", lat, shape, 0.8, rho0=rho0, u0=u0)
        prob = KernelProblem(lat, shape, 0.8, mode="periodic")
        kernel = STPushKernel(prob, V100, rho0=rho0, u0=u0)
        for _ in range(4):
            ref.step()
            kernel.step()
        assert np.abs(kernel.distribution()
                      - expected_push_state(ref)).max() < 1e-13

    @pytest.mark.parametrize("tangential", ["zero", "extrapolate"])
    def test_channel(self, tangential):
        lat = get_lattice("D2Q9")
        shape = (30, 14)
        u_in = channel_inlet_profile(lat, shape, 0.04)
        u0 = np.zeros((2, *shape))
        u0[:] = u_in[:, None, :]
        ref = channel_problem("ST", lat, shape, tau=0.9, u_max=0.04,
                              bc_method="nebb", outlet_tangential=tangential)
        u0[:, ref.domain.solid_mask] = 0.0
        prob = KernelProblem(lat, shape, 0.9, mode="channel", u_inlet=u_in,
                             outlet_tangential=tangential)
        kernel = STPushKernel(prob, V100, rho0=1.0, u0=u0)
        for _ in range(4):
            ref.step()
            kernel.step()
        fluid = ref.domain.fluid_mask
        diff = np.abs(kernel.distribution() - expected_push_state(ref))
        assert diff[:, fluid].max() < 1e-13

    def test_push_pull_same_macroscopic_trajectory(self):
        """rho/u agree between push and pull kernels at every step."""
        lat = get_lattice("D2Q9")
        shape = (16, 12)
        rho0, u0 = taylor_green_fields(shape, 0.0, 0.1, 0.04)
        prob = KernelProblem(lat, shape, 0.8, mode="periodic")
        pull = STKernel(prob, V100, rho0=rho0, u0=u0)
        push = STPushKernel(prob, V100, rho0=rho0, u0=u0)
        for _ in range(4):
            pull.step()
            push.step()
            r1, u1 = pull.macroscopic_fields()
            r2, u2 = push.macroscopic_fields()
            # Pull state is post-collision; push state is post-stream of
            # the same: macroscopic fields coincide (collision conserves,
            # streaming permutes).
            assert r1.sum() == pytest.approx(r2.sum(), rel=1e-13)


class TestPushTraffic:
    def test_total_traffic_close_to_pull(self):
        """Both configurations move ~2Q doubles per node; push pays a small
        write-misalignment penalty where pull's read misalignment is
        absorbed by the L2 — consistent with the paper preferring pull."""
        lat = get_lattice("D2Q9")
        prob = KernelProblem(lat, (128, 128), 0.8, mode="periodic")
        results = {}
        for name, cls in (("pull", STKernel), ("push", STPushKernel)):
            tr = MemoryTracker(l2_bytes=int(V100.l2_kb * 1024))
            k = cls(prob, V100, tracker=tr)
            k.step()
            stats = k.step()
            results[name] = stats.traffic
        n = 128 * 128
        pull_total = results["pull"].sector_bytes_total / n
        push_total = results["push"].sector_bytes_total / n
        assert pull_total == pytest.approx(144, rel=0.02)
        assert push_total == pytest.approx(144, rel=0.03)
        assert (results["push"].write_transactions
                >= results["pull"].write_transactions)
