"""Integration: complex-geometry (masked) mode of the ST kernel."""

import numpy as np
import pytest

from repro.boundary import HalfwayBounceBack
from repro.geometry import Domain
from repro.gpu import KernelProblem, MemoryTracker, STKernel, V100
from repro.lattice import get_lattice
from repro.solver import make_solver


def masked_setup(shape, fraction_solid, seed=7, lattice="D2Q9"):
    lat = get_lattice(lattice)
    rng = np.random.default_rng(seed)
    solid = rng.random(shape) < fraction_solid
    prob = KernelProblem(lat, shape, 0.8, mode="masked", solid_mask=solid)
    nt = np.zeros(shape, dtype=np.int8)
    nt[solid] = 1
    rho0 = 1 + 0.02 * rng.standard_normal(shape)
    u0 = 0.03 * rng.standard_normal((lat.d, *shape))
    return lat, prob, Domain(nt), rho0, u0, solid


class TestMaskedEquivalence:
    @pytest.mark.parametrize("lattice,shape", [
        ("D2Q9", (20, 16)),
        ("D3Q19", (10, 8, 7)),
    ])
    def test_random_obstacles_match_reference(self, lattice, shape):
        lat, prob, dom, rho0, u0, _ = masked_setup(shape, 0.15,
                                                   lattice=lattice)
        ref = make_solver("ST", lat, dom, 0.8,
                          boundaries=[HalfwayBounceBack()],
                          rho0=rho0, u0=u0)
        kernel = STKernel(prob, V100, rho0=rho0, u0=u0)
        for _ in range(4):
            ref.step()
            kernel.step()
        assert np.abs(kernel.distribution() - ref.f).max() < 1e-13

    @pytest.mark.parametrize("scheme", ["MR-P", "MR-R"])
    @pytest.mark.parametrize("lattice,shape,tile", [
        ("D2Q9", (16, 14), (8,)),
        ("D3Q19", (10, 8, 7), (5, 4)),
    ])
    def test_mr_kernel_with_obstacles(self, scheme, lattice, shape, tile):
        """The MR column kernel handles arbitrary geometries too: fused
        reflections at obstacle links inside the sliding window, with the
        wrap replay re-delivering the deferred first-row reflections."""
        from repro.gpu import MRKernel

        lat, prob, dom, rho0, u0, _ = masked_setup(shape, 0.15,
                                                   lattice=lattice)
        ref = make_solver(scheme, lat, dom, 0.8,
                          boundaries=[HalfwayBounceBack()],
                          rho0=rho0, u0=u0)
        kernel = MRKernel(prob, V100, scheme=scheme, tile_cross=tile,
                          rho0=rho0, u0=u0)
        for _ in range(4):
            ref.step()
            kernel.step()
        assert np.abs(kernel.moment_field() - ref.m).max() < 1e-13

    def test_mr_kernel_masked_w_t(self):
        from repro.gpu import MRKernel

        lat, prob, dom, rho0, u0, _ = masked_setup((16, 14), 0.15)
        ref = make_solver("MR-P", lat, dom, 0.8,
                          boundaries=[HalfwayBounceBack()],
                          rho0=rho0, u0=u0)
        kernel = MRKernel(prob, V100, scheme="MR-P", tile_cross=(8,),
                          w_t=2, rho0=rho0, u0=u0)
        for _ in range(4):
            ref.step()
            kernel.step()
        assert np.abs(kernel.moment_field() - ref.m).max() < 1e-13

    def test_mass_conserved_with_obstacles(self):
        lat, prob, dom, rho0, u0, solid = masked_setup((16, 14), 0.2)
        kernel = STKernel(prob, V100, rho0=rho0, u0=u0)
        fluid = ~solid

        def fluid_mass():
            return kernel.distribution().sum(axis=0)[fluid].sum()

        m0 = fluid_mass()
        for _ in range(10):
            kernel.step()
        assert fluid_mass() == pytest.approx(m0, rel=1e-12)

    def test_validation(self):
        lat = get_lattice("D2Q9")
        with pytest.raises(ValueError, match="solid_mask"):
            KernelProblem(lat, (8, 8), 0.8, mode="masked")
        with pytest.raises(ValueError, match="shape"):
            KernelProblem(lat, (8, 8), 0.8, mode="masked",
                          solid_mask=np.zeros((4, 4), bool))
        with pytest.raises(ValueError, match="masked"):
            KernelProblem(lat, (8, 8), 0.8, mode="periodic",
                          solid_mask=np.zeros((8, 8), bool))


class TestIndirectKernel:
    @pytest.mark.parametrize("lattice,shape", [
        ("D2Q9", (20, 16)),
        ("D3Q19", (10, 8, 7)),
    ])
    def test_matches_reference_on_fluid(self, lattice, shape):
        from repro.gpu import STIndirectKernel

        lat, prob, dom, rho0, u0, solid = masked_setup(shape, 0.2,
                                                       lattice=lattice)
        ref = make_solver("ST", lat, dom, 0.8,
                          boundaries=[HalfwayBounceBack()],
                          rho0=rho0, u0=u0)
        kernel = STIndirectKernel(prob, V100, rho0=rho0, u0=u0)
        for _ in range(4):
            ref.step()
            kernel.step()
        fluid = ~solid
        assert np.abs(kernel.distribution() - ref.f)[:, fluid].max() < 1e-13

    def test_traffic_porosity_independent(self):
        from repro.gpu import STIndirectKernel

        per_fluid = {}
        for frac in (0.0, 0.3):
            lat, prob, *_ = masked_setup((64, 64), frac, seed=13)
            tracker = MemoryTracker(l2_bytes=int(V100.l2_kb * 1024))
            kernel = STIndirectKernel(prob, V100, tracker=tracker)
            kernel.step()
            stats = kernel.step()
            per_fluid[frac] = (stats.traffic.sector_bytes_total
                               / stats.n_nodes)
        # 2Q x 8 populations + 4Q adjacency = 180 B for D2Q9, regardless.
        for frac, val in per_fluid.items():
            assert val == pytest.approx(180, abs=3), frac

    def test_state_excludes_solids(self):
        from repro.gpu import STIndirectKernel

        lat, prob, dom, *_ , solid = masked_setup((32, 32), 0.4, seed=2)
        kernel = STIndirectKernel(prob, V100)
        n_fluid = int((~solid).sum())
        # 2 fluid-only lattices (8 B) + adjacency (4 B per link).
        expected = 2 * lat.q * 8 * n_fluid + lat.q * 4 * n_fluid
        assert kernel.global_state_bytes == expected

    def test_channel_mode_rejected(self):
        from repro.gpu import STIndirectKernel

        lat = get_lattice("D2Q9")
        prob = KernelProblem(lat, (12, 10), 0.8, mode="channel")
        with pytest.raises(ValueError, match="periodic and masked"):
            STIndirectKernel(prob, V100)


class TestGeometryTraffic:
    def _traffic_per_fluid_node(self, fraction_solid, shape=(96, 96)):
        lat, prob, dom, rho0, u0, solid = masked_setup(shape, fraction_solid)
        tracker = MemoryTracker(l2_bytes=int(V100.l2_kb * 1024))
        kernel = STKernel(prob, V100, tracker=tracker, rho0=rho0, u0=u0)
        kernel.step()
        stats = kernel.step()
        n_fluid = int((~solid).sum())
        return stats.traffic.sector_bytes_total / n_fluid

    def test_geometry_fetch_costs_little(self):
        """All-fluid masked domain: traffic ~ 2Q x 8 plus ~1 B node types."""
        per_fluid = self._traffic_per_fluid_node(0.0)
        assert 144 <= per_fluid < 148

    def test_direct_addressing_waste_grows_with_solidity(self):
        """Per-fluid-node traffic inflates as porosity drops: the direct-
        addressing penalty studied by Herschlag et al. (paper ref [4]).
        The dominant term is the wasted *gathers* whose sources sit inside
        solids plus the geometry fetch, bounded by ~1/phi scaling."""
        t0 = self._traffic_per_fluid_node(0.0)
        t2 = self._traffic_per_fluid_node(0.2)
        t4 = self._traffic_per_fluid_node(0.4)
        assert t0 < t2 < t4
        assert t4 > 1.1 * t0
