"""Integration: AA-pattern single-lattice solver vs two-lattice ST."""

import numpy as np
import pytest

from repro.geometry import channel_2d, periodic_box
from repro.lattice import get_lattice
from repro.perf import state_values_per_node
from repro.solver import AASolver, periodic_problem
from repro.validation import relative_l2_error, taylor_green_fields


def make_pair(lattice_name, shape, tau=0.8, seed=3):
    lat = get_lattice(lattice_name)
    rng = np.random.default_rng(seed)
    rho0 = 1 + 0.03 * rng.standard_normal(shape)
    u0 = 0.03 * rng.standard_normal((lat.d, *shape))
    aa = AASolver(lat, periodic_box(shape), tau, rho0=rho0, u0=u0)
    st = periodic_problem("ST", lat, shape, tau, rho0=rho0, u0=u0)
    return aa, st


class TestEquivalence:
    @pytest.mark.parametrize("lattice_name,shape", [
        ("D2Q9", (18, 14)),
        ("D3Q19", (8, 7, 6)),
        ("D3Q27", (6, 6, 5)),
    ])
    def test_matches_st_every_step(self, lattice_name, shape):
        """Same macroscopic trajectory at both parities, to epsilon."""
        aa, st = make_pair(lattice_name, shape)
        for _ in range(6):
            aa.run(1)
            st.run(1)
            ra, ua = aa.macroscopic()
            rs, us = st.macroscopic()
            assert np.abs(ra - rs).max() < 1e-13
            assert np.abs(ua - us).max() < 1e-13

    def test_taylor_green_accuracy(self):
        shape, tau, u0 = (48, 48), 0.8, 0.03
        nu = (tau - 0.5) / 3
        rho_i, u_i = taylor_green_fields(shape, 0.0, nu, u0)
        aa = AASolver(get_lattice("D2Q9"), periodic_box(shape), tau,
                      rho0=rho_i, u0=u_i)
        aa.run(200)
        _, u_ref = taylor_green_fields(shape, 200.0, nu, u0)
        assert relative_l2_error(aa.velocity(), u_ref) < 5e-3

    def test_conservation(self):
        aa, _ = make_pair("D2Q9", (12, 12))
        m0 = aa.diagnostics.mass()
        p0 = aa.diagnostics.momentum()
        aa.run(21)                         # odd count: ends mid-pair
        assert aa.diagnostics.mass() == pytest.approx(m0, rel=1e-12)
        assert np.allclose(aa.diagnostics.momentum(), p0, atol=1e-12)


class TestRestrictions:
    def test_rejects_solids(self):
        lat = get_lattice("D2Q9")
        with pytest.raises(ValueError, match="periodic"):
            AASolver(lat, channel_2d(8, 6, with_io=False), 0.8)

    def test_rejects_forcing(self):
        lat = get_lattice("D2Q9")
        with pytest.raises(ValueError, match="forcing"):
            AASolver(lat, periodic_box((6, 6)), 0.8,
                     force=np.array([1e-4, 0.0]))


class TestFootprintStory:
    def test_three_way_footprint(self):
        """AA halves ST's footprint; MR beats both in 3D (Section 4.1+)."""
        lat = get_lattice("D3Q19")
        st = state_values_per_node(lat, "ST")
        aa = state_values_per_node(lat, "AA")
        mr = state_values_per_node(lat, "MR")
        assert (st, aa, mr) == (38, 19, 20)
        # In 3D, AA and MR footprints are nearly equal...
        assert abs(aa - mr) <= 1
        # ...but MR still moves 47% fewer bytes per update.
        from repro.perf import bytes_per_flup

        assert bytes_per_flup(lat, "MR") < 0.6 * bytes_per_flup(lat, "ST")

    def test_solver_reports_footprint(self):
        aa, st = make_pair("D2Q9", (8, 8))
        assert aa.state_values_per_node == 9
        assert st.state_values_per_node == 18


class TestOddParity:
    """Odd step counts and odd-time reads — the AA pattern's tricky half."""

    @pytest.mark.parametrize("n_steps", [1, 3, 5, 7])
    def test_matches_st_after_odd_step_counts(self, n_steps):
        """Fresh runs ending mid-pair agree with ST at every odd length."""
        aa, st = make_pair("D2Q9", (16, 12), seed=n_steps)
        aa.run(n_steps)
        st.run(n_steps)
        ra, ua = aa.macroscopic()
        rs, us = st.macroscopic()
        assert np.abs(ra - rs).max() < 1e-13
        assert np.abs(ua - us).max() < 1e-13

    def test_macroscopic_at_odd_parity_is_pure(self):
        """Odd-time macroscopic() gathers without touching solver state."""
        aa, st = make_pair("D2Q9", (14, 10), seed=11)
        aa.run(3)
        assert aa.time % 2 == 1
        f_before = aa.f.copy()
        r1, u1 = aa.macroscopic()
        r2, u2 = aa.macroscopic()
        assert np.array_equal(aa.f, f_before)       # read did not mutate
        assert np.array_equal(r1, r2)
        assert np.array_equal(u1, u2)
        # Mass/momentum computed through the odd-parity gather agree with
        # the two-lattice solver's straight moments.
        st.run(3)
        rs, us = st.macroscopic()
        assert np.abs(r1 - rs).max() < 1e-13
        assert np.abs(u1 - us).max() < 1e-13

    def test_phase_accounting_over_step_pairs(self):
        """Per-phase telemetry adds up: distinct gather/scatter sub-phases,
        correct call counts, and child times summing to the step time."""
        from repro.obs import Telemetry

        aa, _ = make_pair("D2Q9", (48, 48), seed=5)
        tel = Telemetry()
        aa.attach_telemetry(tel)
        k = 4
        aa.run(2 * k)

        assert tel.phases["step"].calls == 2 * k
        assert tel.phases["step/collide"].calls == 2 * k
        assert tel.phases["step/stream:gather"].calls == k
        assert tel.phases["step/stream:scatter"].calls == k
        assert "step/stream" not in tel.phases

        step_total = tel.phase_total("step")
        children = sum(stats.total for path, stats in tel.phases.items()
                       if path.startswith("step/"))
        # Children are disjoint sub-spans of "step": their sum can never
        # exceed it, and outside-phase overhead is a few allocations only.
        assert children <= step_total
        assert children >= 0.5 * step_total
