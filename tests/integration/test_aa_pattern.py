"""Integration: AA-pattern single-lattice solver vs two-lattice ST."""

import numpy as np
import pytest

from repro.geometry import channel_2d, periodic_box
from repro.lattice import get_lattice
from repro.perf import state_values_per_node
from repro.solver import AASolver, periodic_problem
from repro.validation import relative_l2_error, taylor_green_fields


def make_pair(lattice_name, shape, tau=0.8, seed=3):
    lat = get_lattice(lattice_name)
    rng = np.random.default_rng(seed)
    rho0 = 1 + 0.03 * rng.standard_normal(shape)
    u0 = 0.03 * rng.standard_normal((lat.d, *shape))
    aa = AASolver(lat, periodic_box(shape), tau, rho0=rho0, u0=u0)
    st = periodic_problem("ST", lat, shape, tau, rho0=rho0, u0=u0)
    return aa, st


class TestEquivalence:
    @pytest.mark.parametrize("lattice_name,shape", [
        ("D2Q9", (18, 14)),
        ("D3Q19", (8, 7, 6)),
        ("D3Q27", (6, 6, 5)),
    ])
    def test_matches_st_every_step(self, lattice_name, shape):
        """Same macroscopic trajectory at both parities, to epsilon."""
        aa, st = make_pair(lattice_name, shape)
        for _ in range(6):
            aa.run(1)
            st.run(1)
            ra, ua = aa.macroscopic()
            rs, us = st.macroscopic()
            assert np.abs(ra - rs).max() < 1e-13
            assert np.abs(ua - us).max() < 1e-13

    def test_taylor_green_accuracy(self):
        shape, tau, u0 = (48, 48), 0.8, 0.03
        nu = (tau - 0.5) / 3
        rho_i, u_i = taylor_green_fields(shape, 0.0, nu, u0)
        aa = AASolver(get_lattice("D2Q9"), periodic_box(shape), tau,
                      rho0=rho_i, u0=u_i)
        aa.run(200)
        _, u_ref = taylor_green_fields(shape, 200.0, nu, u0)
        assert relative_l2_error(aa.velocity(), u_ref) < 5e-3

    def test_conservation(self):
        aa, _ = make_pair("D2Q9", (12, 12))
        m0 = aa.diagnostics.mass()
        p0 = aa.diagnostics.momentum()
        aa.run(21)                         # odd count: ends mid-pair
        assert aa.diagnostics.mass() == pytest.approx(m0, rel=1e-12)
        assert np.allclose(aa.diagnostics.momentum(), p0, atol=1e-12)


class TestRestrictions:
    def test_rejects_solids(self):
        lat = get_lattice("D2Q9")
        with pytest.raises(ValueError, match="periodic"):
            AASolver(lat, channel_2d(8, 6, with_io=False), 0.8)

    def test_rejects_forcing(self):
        lat = get_lattice("D2Q9")
        with pytest.raises(ValueError, match="forcing"):
            AASolver(lat, periodic_box((6, 6)), 0.8,
                     force=np.array([1e-4, 0.0]))


class TestFootprintStory:
    def test_three_way_footprint(self):
        """AA halves ST's footprint; MR beats both in 3D (Section 4.1+)."""
        lat = get_lattice("D3Q19")
        st = state_values_per_node(lat, "ST")
        aa = state_values_per_node(lat, "AA")
        mr = state_values_per_node(lat, "MR")
        assert (st, aa, mr) == (38, 19, 20)
        # In 3D, AA and MR footprints are nearly equal...
        assert abs(aa - mr) <= 1
        # ...but MR still moves 47% fewer bytes per update.
        from repro.perf import bytes_per_flup

        assert bytes_per_flup(lat, "MR") < 0.6 * bytes_per_flup(lat, "ST")

    def test_solver_reports_footprint(self):
        aa, st = make_pair("D2Q9", (8, 8))
        assert aa.state_values_per_node == 9
        assert st.state_values_per_node == 18
