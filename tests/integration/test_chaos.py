"""Chaos tests: deterministic fault injection against the process runtime.

Opt-in via ``pytest -m chaos`` (deselected by default — see
``pyproject.toml``): every test here launches real worker processes and
kills, hangs, or corrupts one of them mid-run through
:mod:`repro.parallel.faults`, then asserts the supervisor's contract:

* a killed rank triggers a bounded restart from the last checkpoint and
  the recovered run finishes with *exactly* the fields of an undisturbed
  run;
* a hung rank converts to a structured :class:`ParallelRuntimeError`
  via the barrier timeout and the straggler escalation — no deadlock,
  no zombie, and no leaked ``/dev/shm`` segment (asserted by listing
  the directory before and after);
* a NaN-corrupted rank is caught by the in-worker watchdog and likewise
  recovered from the checkpoint;
* with no checkpoint to restart from, retries restart from scratch and
  still converge once the fault stops firing.
"""

import os
import time

import numpy as np
import pytest

from repro.parallel import (
    FaultSpec,
    ParallelRuntimeError,
    RunSpec,
    run_process,
)

pytestmark = pytest.mark.chaos

SHAPE = (24, 10)
TAU = 0.8
FAST = dict(barrier_timeout=5.0, straggler_grace=2.0)


def _spec(scheme, n_ranks, **kw):
    return RunSpec("periodic", scheme, "D2Q9", SHAPE, n_ranks,
                   tau=TAU, **kw)


def _shm_segments():
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return []
    return sorted(n for n in os.listdir("/dev/shm")
                  if n.startswith("mrlbm"))


def _max_err(a, b):
    return max(np.abs(a.rho - b.rho).max(), np.abs(a.u - b.u).max())


class TestKillRecovery:
    """A rank killed mid-run is restarted from the last checkpoint."""

    @pytest.mark.parametrize("scheme", ["ST", "MR-P"])
    def test_kill_then_resume_matches_clean_run(self, tmp_path, scheme):
        clean = run_process(_spec(scheme, 2), 10)
        ck = str(tmp_path / "ck")
        spec = _spec(scheme, 2, checkpoint_dir=ck, checkpoint_every=4,
                     max_restarts=2,
                     fault=FaultSpec(rank=1, step=6, kind="kill"))
        result = run_process(spec, 10, **FAST)
        assert result.restarts == 1
        assert result.failure_history  # the killed attempt is on record
        assert _max_err(result, clean) < 1e-12
        assert not _shm_segments()

    def test_kill_without_checkpoint_restarts_from_scratch(self, tmp_path):
        clean = run_process(_spec("MR-P", 2), 8)
        spec = _spec("MR-P", 2, max_restarts=1,
                     fault=FaultSpec(rank=0, step=3, kind="kill"))
        result = run_process(spec, 8, **FAST)
        assert result.restarts == 1
        assert result.start_step == 0
        assert _max_err(result, clean) < 1e-12

    def test_restart_budget_exhaustion_raises(self):
        # attempt=None arms the fault on every attempt: unrecoverable.
        spec = _spec("ST", 2, max_restarts=1,
                     fault=FaultSpec(rank=1, step=2, kind="exception",
                                     attempt=None))
        with pytest.raises(ParallelRuntimeError) as excinfo:
            run_process(spec, 6, **FAST)
        err = excinfo.value
        assert err.restarts == 1
        assert len(err.failure_history) == 2  # both attempts recorded
        assert "restart" in str(err)
        assert not _shm_segments()


class TestHangRecovery:
    """A hung rank becomes a structured timeout error, never a deadlock."""

    def test_hang_converts_to_structured_error(self):
        before = _shm_segments()
        spec = _spec("ST", 2,
                     fault=FaultSpec(rank=0, step=2, kind="hang",
                                     hang_s=120.0))
        t0 = time.monotonic()
        with pytest.raises(ParallelRuntimeError) as excinfo:
            run_process(spec, 6, run_timeout=60.0, **FAST)
        # bounded by barrier_timeout + straggler_grace + harvest slack,
        # nowhere near the 120 s hang
        assert time.monotonic() - t0 < 40.0
        failures = excinfo.value.failures
        assert any(f.exc_type in ("Straggler", "ProcessExit")
                   for f in failures)
        assert _shm_segments() == before == []

    def test_hang_with_checkpoint_recovers_on_retry(self, tmp_path):
        clean = run_process(_spec("MR-P", 2), 10)
        ck = str(tmp_path / "ck")
        spec = _spec("MR-P", 2, checkpoint_dir=ck, checkpoint_every=4,
                     max_restarts=1,
                     fault=FaultSpec(rank=1, step=6, kind="hang",
                                     hang_s=120.0))
        result = run_process(spec, 10, **FAST)
        assert result.restarts == 1
        assert _max_err(result, clean) < 1e-12
        assert not _shm_segments()


class TestCorruptionRecovery:
    """NaN corruption is caught by the in-worker watchdog and recovered."""

    def test_corrupt_detected_and_recovered(self, tmp_path):
        clean = run_process(_spec("MR-P", 2), 10)
        ck = str(tmp_path / "ck")
        spec = _spec("MR-P", 2, checkpoint_dir=ck, checkpoint_every=4,
                     watchdog_every=2, max_restarts=1,
                     fault=FaultSpec(rank=0, step=6, kind="corrupt"))
        result = run_process(spec, 10, **FAST)
        assert result.restarts == 1
        assert any(f.exc_type == "StabilityError"
                   for att in result.failure_history for f in att)
        assert _max_err(result, clean) < 1e-12

    def test_corrupt_without_watchdog_or_retry_fails_loud(self):
        # Without the watchdog the NaNs still blow up the moment any
        # reduction sees them is NOT guaranteed — but with the watchdog
        # and no restart budget the run must fail with the structured
        # report rather than return corrupted fields.
        spec = _spec("MR-P", 2, watchdog_every=2,
                     fault=FaultSpec(rank=0, step=2, kind="corrupt"))
        with pytest.raises(ParallelRuntimeError) as excinfo:
            run_process(spec, 8, **FAST)
        assert any(f.exc_type == "StabilityError"
                   for f in excinfo.value.failures)
        assert not _shm_segments()


class TestCliResume:
    """End-to-end: the documented CLI kill -> resume workflow."""

    def test_cli_checkpoint_then_resume(self, tmp_path, capsys):
        from repro.cli import main

        ck = str(tmp_path / "ck")
        args = ["run", "--problem", "taylor-green", "--shape", "24,24",
                "--scheme", "MR-P", "--ranks", "2"]
        assert main(args + ["--steps", "6", "--checkpoint-dir", ck,
                            "--checkpoint-every", "3"]) == 0
        assert main(args + ["--steps", "10", "--resume", ck]) == 0
        out = capsys.readouterr().out
        assert "resumed from checkpoint at step 3" in out
        assert not _shm_segments()
