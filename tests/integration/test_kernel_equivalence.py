"""Integration: virtual-GPU kernels vs reference solvers.

The central correctness claim of the reproduction: the ST pull kernel
(Algorithm 1) and the MR column kernel (Algorithm 2, with shared-memory
streaming, cross halos, sliding window and circular array shifting) must
produce the *same simulation states* as the plain vectorized reference
solvers, for every scheme, dimension and boundary setup.
"""

import numpy as np
import pytest

from repro.gpu import KernelProblem, MRKernel, STKernel, V100
from repro.lattice import get_lattice
from repro.solver import channel_problem, periodic_problem
from repro.solver.presets import channel_inlet_profile

STEPS = 4


def periodic_setup(lattice_name, shape, tau=0.8, seed=11):
    lat = get_lattice(lattice_name)
    rng = np.random.default_rng(seed)
    rho0 = 1 + 0.03 * rng.standard_normal(shape)
    u0 = 0.03 * rng.standard_normal((lat.d, *shape))
    prob = KernelProblem(lat, shape, tau, mode="periodic")
    return lat, prob, rho0, u0


def channel_setup(lattice_name, shape, tau=0.9, u_max=0.04,
                  outlet_tangential="zero"):
    lat = get_lattice(lattice_name)
    u_in = channel_inlet_profile(lat, shape, u_max)
    prob = KernelProblem(lat, shape, tau, mode="channel", u_inlet=u_in,
                         outlet_tangential=outlet_tangential)
    u0 = np.zeros((lat.d, *shape))
    u0[:] = u_in[(slice(None), None) + (slice(None),) * (lat.d - 1)]
    u0[:, prob.node_type_grid() == 1] = 0.0
    ref = channel_problem("ST", lat, shape, tau=tau, u_max=u_max,
                          bc_method="nebb", outlet_tangential=outlet_tangential)
    return lat, prob, u0, ref


class TestSTKernel:
    @pytest.mark.parametrize("lattice_name,shape", [
        ("D2Q9", (20, 16)),
        ("D3Q19", (10, 8, 6)),
        ("D3Q27", (8, 6, 5)),
    ])
    def test_periodic_matches_reference(self, lattice_name, shape):
        lat, prob, rho0, u0 = periodic_setup(lattice_name, shape)
        ref = periodic_problem("ST", lat, shape, 0.8, rho0=rho0, u0=u0)
        kernel = STKernel(prob, V100, rho0=rho0, u0=u0)
        for _ in range(STEPS):
            ref.step()
            kernel.step()
        assert np.abs(kernel.distribution() - ref.f).max() < 1e-13

    @pytest.mark.parametrize("lattice_name,shape", [
        ("D2Q9", (24, 12)),
        ("D3Q19", (12, 8, 7)),
    ])
    @pytest.mark.parametrize("tangential", ["zero", "extrapolate"])
    def test_channel_matches_reference(self, lattice_name, shape, tangential):
        lat, prob, u0, ref = channel_setup(lattice_name, shape,
                                           outlet_tangential=tangential)
        kernel = STKernel(prob, V100, rho0=1.0, u0=u0)
        for _ in range(STEPS):
            ref.step()
            kernel.step()
        assert np.abs(kernel.distribution() - ref.f).max() < 1e-12

    def test_block_size_does_not_change_results(self):
        lat, prob, rho0, u0 = periodic_setup("D2Q9", (16, 12))
        k1 = STKernel(prob, V100, block_size=64, rho0=rho0, u0=u0)
        k2 = STKernel(prob, V100, block_size=512, rho0=rho0, u0=u0)
        for _ in range(STEPS):
            k1.step()
            k2.step()
        assert np.abs(k1.distribution() - k2.distribution()).max() < 1e-15

    def test_traffic_near_ideal(self):
        """ST moves 2Q doubles per node (Table 2)."""
        lat, prob, rho0, u0 = periodic_setup("D2Q9", (64, 64))
        from repro.gpu import MemoryTracker

        tracker = MemoryTracker(l2_bytes=int(V100.l2_kb * 1024))
        kernel = STKernel(prob, V100, tracker=tracker, rho0=rho0, u0=u0)
        kernel.step()
        stats = kernel.step()
        per_node = stats.traffic.sector_bytes_total / stats.n_nodes
        assert per_node == pytest.approx(144, rel=0.02)


class TestMRKernel:
    @pytest.mark.parametrize("scheme", ["MR-P", "MR-R"])
    @pytest.mark.parametrize("lattice_name,shape,tile", [
        ("D2Q9", (16, 14), (8,)),
        ("D3Q19", (10, 8, 7), (5, 4)),
        ("D3Q27", (8, 6, 5), (4, 3)),
    ])
    def test_periodic_matches_reference(self, scheme, lattice_name, shape, tile):
        lat, prob, rho0, u0 = periodic_setup(lattice_name, shape)
        ref = periodic_problem(scheme, lat, shape, 0.8, rho0=rho0, u0=u0)
        kernel = MRKernel(prob, V100, scheme=scheme, tile_cross=tile,
                          rho0=rho0, u0=u0)
        for _ in range(STEPS):
            ref.step()
            kernel.step()
        assert np.abs(kernel.moment_field() - ref.m).max() < 1e-13

    @pytest.mark.parametrize("w_t", [1, 2, 3, 7])
    def test_window_tile_height_invariance(self, w_t):
        """All window tile heights give identical physics (ring logic)."""
        shape = (12, 21)                   # R = 21 divisible by 1, 3, 7
        if 21 % w_t:
            shape = (12, 20)               # for w_t = 2: R = 20
        lat, prob, rho0, u0 = periodic_setup("D2Q9", shape)
        ref = periodic_problem("MR-P", lat, shape, 0.8, rho0=rho0, u0=u0)
        kernel = MRKernel(prob, V100, scheme="MR-P", tile_cross=(6,),
                          w_t=w_t, rho0=rho0, u0=u0)
        for _ in range(STEPS):
            ref.step()
            kernel.step()
        assert np.abs(kernel.moment_field() - ref.m).max() < 1e-13

    def test_cross_tile_invariance(self):
        shape = (24, 10)
        lat, prob, rho0, u0 = periodic_setup("D2Q9", shape)
        fields = []
        for tile in ((4,), (8,), (24,)):
            k = MRKernel(prob, V100, scheme="MR-P", tile_cross=tile,
                         rho0=rho0, u0=u0)
            for _ in range(STEPS):
                k.step()
            fields.append(k.moment_field())
        assert np.abs(fields[0] - fields[1]).max() < 1e-14
        assert np.abs(fields[0] - fields[2]).max() < 1e-14

    @pytest.mark.parametrize("scheme", ["MR-P", "MR-R"])
    @pytest.mark.parametrize("lattice_name,shape,tile", [
        ("D2Q9", (24, 12), (8,)),
        ("D3Q19", (12, 8, 7), (6, 4)),
    ])
    @pytest.mark.parametrize("tangential", ["zero", "extrapolate"])
    def test_channel_matches_reference(self, scheme, lattice_name, shape,
                                       tile, tangential):
        lat = get_lattice(lattice_name)
        u_in = channel_inlet_profile(lat, shape, 0.04)
        prob = KernelProblem(lat, shape, 0.9, mode="channel", u_inlet=u_in,
                             outlet_tangential=tangential)
        u0 = np.zeros((lat.d, *shape))
        u0[:] = u_in[(slice(None), None) + (slice(None),) * (lat.d - 1)]
        u0[:, prob.node_type_grid() == 1] = 0.0
        ref = channel_problem(scheme, lat, shape, tau=0.9, u_max=0.04,
                              bc_method="nebb", outlet_tangential=tangential)
        kernel = MRKernel(prob, V100, scheme=scheme, tile_cross=tile,
                          rho0=1.0, u0=u0)
        for _ in range(STEPS):
            ref.step()
            kernel.step()
        assert np.abs(kernel.moment_field() - ref.m).max() < 1e-12

    def test_traffic_near_ideal_with_l2(self):
        """With the L2 model, MR DRAM traffic is 2M doubles per node: the
        halo reads are shared between neighbouring columns (Table 2)."""
        from repro.gpu import MemoryTracker

        lat, prob, rho0, u0 = periodic_setup("D2Q9", (64, 64))
        tracker = MemoryTracker(l2_bytes=int(V100.l2_kb * 1024))
        kernel = MRKernel(prob, V100, scheme="MR-P", tile_cross=(16,),
                          tracker=tracker, rho0=rho0, u0=u0)
        kernel.step()
        stats = kernel.step()
        per_node = stats.traffic.sector_bytes_total / stats.n_nodes
        assert per_node == pytest.approx(96, rel=0.01)

    def test_traffic_includes_halo_without_l2(self):
        """Without a cache model, the logical reads carry the exact halo
        amplification factor (tile+halo)/tile, and the sector counts are
        larger still (misaligned halo fetches)."""
        lat, prob, rho0, u0 = periodic_setup("D2Q9", (64, 64))
        kernel = MRKernel(prob, V100, scheme="MR-P", tile_cross=(16,),
                          rho0=rho0, u0=u0)
        kernel.step()
        stats = kernel.step()
        logical_read = stats.traffic.bytes_read / stats.n_nodes
        assert logical_read == pytest.approx(48 * 18 / 16, rel=1e-6)
        assert stats.traffic.sector_bytes_read > stats.traffic.bytes_read

    def test_divisibility_validated(self):
        lat, prob, *_ = periodic_setup("D2Q9", (16, 14))
        with pytest.raises(ValueError, match="divide"):
            MRKernel(prob, V100, tile_cross=(5,))
        with pytest.raises(ValueError, match="window"):
            MRKernel(prob, V100, tile_cross=(8,), w_t=4)

    def test_multispeed_rejected(self):
        lat, prob, *_ = periodic_setup("D3Q39", (8, 8, 8))
        with pytest.raises(ValueError, match="multi-speed"):
            MRKernel(prob, V100, tile_cross=(4, 4))

    def test_3d_window_tile_height(self):
        """w_t = 2 in 3D matches the reference like w_t = 1 does."""
        lat, prob, rho0, u0 = periodic_setup("D3Q19", (8, 6, 6))
        ref = periodic_problem("MR-P", lat, (8, 6, 6), 0.8, rho0=rho0, u0=u0)
        kernel = MRKernel(prob, V100, scheme="MR-P", tile_cross=(4, 3),
                          w_t=2, rho0=rho0, u0=u0)
        for _ in range(STEPS):
            ref.step()
            kernel.step()
        assert np.abs(kernel.moment_field() - ref.m).max() < 1e-13

    def test_mi100_device_model(self):
        """Kernels validate and run against the MI100 model too."""
        from repro.gpu import MI100

        lat, prob, rho0, u0 = periodic_setup("D2Q9", (16, 10))
        ref = periodic_problem("MR-R", lat, (16, 10), 0.8, rho0=rho0, u0=u0)
        kernel = MRKernel(prob, MI100, scheme="MR-R", tile_cross=(8,),
                          rho0=rho0, u0=u0)
        for _ in range(STEPS):
            ref.step()
            kernel.step()
        assert np.abs(kernel.moment_field() - ref.m).max() < 1e-13

    def test_st_kernel_multispeed_supported(self):
        """The pull ST kernel handles |c| > 1 (gathers with wrap)."""
        lat, prob, rho0, u0 = periodic_setup("D3Q39", (8, 7, 7))
        ref = periodic_problem("ST", lat, (8, 7, 7), 0.8, rho0=rho0, u0=u0)
        kernel = STKernel(prob, V100, rho0=rho0, u0=u0)
        for _ in range(3):
            ref.step()
            kernel.step()
        assert np.abs(kernel.distribution() - ref.f).max() < 1e-13

    def test_bad_scheme(self):
        lat, prob, *_ = periodic_setup("D2Q9", (16, 14))
        with pytest.raises(ValueError, match="scheme"):
            MRKernel(prob, V100, scheme="ST")

    def test_state_bytes_smaller_than_st(self):
        """The footprint claim, at the level of allocated device arrays."""
        lat, prob, rho0, u0 = periodic_setup("D3Q19", (8, 8, 8))
        st = STKernel(prob, V100, rho0=rho0, u0=u0)
        mr = MRKernel(prob, V100, tile_cross=(4, 4), rho0=rho0, u0=u0)
        assert mr.global_state_bytes < 0.6 * st.global_state_bytes
