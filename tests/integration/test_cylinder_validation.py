"""Cylinder-flow validation tier: Schäfer–Turek benchmarks + curved BC.

Three layers of evidence that the sparse backend + interpolated
(Bouzidi) curved boundary reproduce real bluff-body physics:

* **tier-1** — the Re=20 steady case lands its drag coefficient inside
  5% of the Schäfer–Turek reference band in ~20 s;
* **validation marker** — the Re=100 Kármán vortex street hits the
  reference Strouhal number within 5%, and a grid-refinement study shows
  the curved-boundary drag converging at second order while the
  staircase stalls (run with ``pytest -m validation``).
"""

import math

import numpy as np
import pytest

from repro.validation import (SCHAFER_TUREK, schafer_turek_case,
                              strouhal_number)


class TestSchaferTurekRe20:
    def test_steady_drag_within_five_percent(self):
        """Re=20 drag lands within 5% of the benchmark band (tier-1)."""
        case = schafer_turek_case(re=20.0, d=10.0, u_max=0.05,
                                  scheme="MR-R", backend="sparse",
                                  curved=True)
        case.solver.run(12_000)
        c_d, c_l = case.coefficients()
        lo, hi = SCHAFER_TUREK[20]["c_d"]
        ref = 0.5 * (lo + hi)
        assert abs(c_d - ref) / ref <= 0.05, (c_d, ref)
        # The steady case is near-symmetric: lift is a small fraction of
        # drag (the reference c_l ~= 0.0106 at converged resolution).
        assert abs(c_l) < 0.05 * c_d

    def test_case_construction_is_benchmark_shaped(self):
        """Geometry, Reynolds number and inlet normalization line up."""
        case = schafer_turek_case(re=20.0, d=8.0, u_max=0.1)
        nx, ny = case.solver.domain.shape
        assert nx == round(22 * 8)
        assert ny == round(4.1 * 8) + 2
        assert case.u_mean == pytest.approx(2.0 * 0.1 / 3.0)
        nu = case.solver.lat.viscosity(case.solver.tau)
        assert case.u_mean * case.diameter / nu == pytest.approx(20.0)
        assert case.cylinder_mask.any()
        assert case.force_meter is not None


@pytest.mark.validation
class TestSchaferTurekRe100:
    def test_strouhal_within_five_percent(self):
        """The Kármán street sheds at St within 5% of the 0.30 reference."""
        case = schafer_turek_case(re=100.0, d=10.0, u_max=0.15,
                                  scheme="MR-R", backend="sparse",
                                  curved=True)
        case.solver.run(8_000)                      # shed transients
        lifts = []
        case.solver.run(8_192, callback=lambda s: lifts.append(
            case.coefficients()[1]), callback_interval=1)
        st = strouhal_number(np.asarray(lifts), case.u_mean, case.diameter)
        lo, hi = SCHAFER_TUREK[100]["strouhal"]
        ref = 0.5 * (lo + hi)
        assert abs(st - ref) / ref <= 0.05, st
        # Lift amplitude near the reference c_l_max ~= 1.0 (drag at this
        # resolution over-predicts ~13%, so only St and lift are pinned).
        c_l_max = float(np.abs(lifts).max())
        assert 0.7 <= c_l_max <= 1.3, c_l_max


@pytest.mark.validation
class TestCurvedBoundaryConvergence:
    def test_drag_converges_second_order_vs_staircase(self):
        """Curved-BC drag converges at >= order 1.5 toward the fine-grid
        solution; the staircase error is larger and stalls."""

        def c_d(d, curved):
            case = schafer_turek_case(re=20.0, d=d, u_max=0.05,
                                      scheme="MR-R", backend="sparse",
                                      curved=curved)
            case.solver.run(int(round(1200 * d)))
            return case.coefficients()[0]

        ref = c_d(16.0, True)                       # fine-grid reference
        errs_curved = [abs(c_d(d, True) - ref) for d in (6.0, 9.0)]
        errs_stair = [abs(c_d(d, False) - ref) for d in (6.0, 9.0)]

        order = (math.log(errs_curved[0] / errs_curved[1])
                 / math.log(9.0 / 6.0))
        assert order >= 1.5, (order, errs_curved)
        # The staircase wall is first-order in wall position: its error
        # is far larger at every resolution and barely improves.
        assert errs_stair[0] > errs_curved[0]
        assert errs_stair[1] > 2.0 * errs_curved[1]
