"""SIGINT during a distributed run must release shared memory and exit 130.

Regression test: Ctrl-C used to leave ``/dev/shm/mrlbm-*`` segments
behind (the parent unwound past the harvest loop without terminating
the rank processes first, so the blocks were still mapped when the
unlink ran) and the process died with a traceback instead of the
conventional ``128 + SIGINT`` status. The signal is delivered to the
*parent only* — exactly what a supervisor or a terminal foreground
group delivers — so the test exercises the runtime's own teardown path,
not the workers' default handlers.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
SHM = Path("/dev/shm")


def _mrlbm_segments():
    if not SHM.is_dir():  # pragma: no cover - non-Linux
        return []
    return sorted(p.name for p in SHM.glob("mrlbm*"))


@pytest.mark.skipif(not SHM.is_dir(),
                    reason="needs /dev/shm (POSIX shared memory)")
def test_sigint_exits_130_without_shm_leak(tmp_path):
    events = tmp_path / "events"
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO_ROOT / "src") + os.pathsep
                         + env.get("PYTHONPATH", "")).rstrip(os.pathsep)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "run",
         "--problem", "forced-channel", "--shape", "64,34",
         "--steps", "5000000", "--ranks", "2", "--backend", "process",
         "--events", str(events)],
        cwd=tmp_path, env=env, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True)
    try:
        # wait until the cohort is actually running (first event lines)
        deadline = time.monotonic() + 60
        while (time.monotonic() < deadline
               and not list(events.glob("events-rank*.jsonl"))):
            assert proc.poll() is None, proc.communicate()
            time.sleep(0.1)
        assert list(events.glob("events-rank*.jsonl")), \
            "run never started emitting events"
        time.sleep(0.3)
        proc.send_signal(signal.SIGINT)
        out, err = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on failure
            proc.kill()
            proc.communicate()
    assert proc.returncode == 130, (proc.returncode, out, err)
    assert "INTERRUPTED" in err
    # the interrupt path must terminate every rank and unlink its blocks
    time.sleep(0.3)
    assert _mrlbm_segments() == []
