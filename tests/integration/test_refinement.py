"""Integration: two-level grid refinement in moment space."""

import numpy as np
import pytest

from repro.refinement import (
    RefinedSimulation2D,
    RefinedTaylorGreen2D,
    fine_tau,
    pi_neq_scale,
)
from repro.solver import periodic_problem
from repro.validation import relative_l2_error, taylor_green_fields


class TestScaling:
    def test_fine_tau(self):
        """Equal physical viscosity: tau_f - 1/2 = 2 (tau_c - 1/2)."""
        assert fine_tau(0.8) == pytest.approx(1.1)
        assert fine_tau(0.55) == pytest.approx(0.6)

    def test_pi_neq_scale(self):
        assert pi_neq_scale(0.8) == pytest.approx(1.1 / 1.6)
        # tau -> inf: scale -> 1 (the neq rescale matters most near 1/2).
        assert pi_neq_scale(50.0) == pytest.approx(1.0, abs=0.01)

    def test_band_validation(self):
        with pytest.raises(ValueError, match="band"):
            RefinedSimulation2D((32, 16), (0, 10), 0.8)
        with pytest.raises(ValueError, match="band"):
            RefinedSimulation2D((32, 16), (10, 31), 0.8)


class TestInterfaceExactness:
    def test_uniform_flow_passes_exactly(self):
        """A uniform flow has zero Pi_neq and constant fields: every
        interface operation is exact, so the state must stay uniform to
        machine precision on both grids."""
        shape, band = (32, 16), (10, 20)
        u0 = np.zeros((2, *shape))
        u0[0] = 0.04
        u0[1] = -0.02
        r = RefinedSimulation2D(shape, band, 0.8, u0=u0)
        r.run(10)
        rho_c, u_c = r.coarse_macroscopic()
        assert np.abs(rho_c - 1.0).max() < 1e-13
        assert np.abs(u_c[0] - 0.04).max() < 1e-13
        assert np.abs(u_c[1] + 0.02).max() < 1e-13
        rho_f, u_f = r.fine_macroscopic()
        assert np.abs(u_f[0] - 0.04).max() < 1e-13

    def test_rest_state_fixed_point(self):
        r = RefinedSimulation2D((24, 12), (8, 16), 0.7)
        r.run(5)
        _, u_c = r.coarse_macroscopic()
        assert np.abs(u_c).max() < 1e-14


class TestTaylorGreen:
    def test_accuracy_matches_unrefined(self):
        """With node-aligned ghosts and cubic interface interpolation the
        refined run tracks the analytic solution as well as the plain
        coarse solver — no secular interface drift."""
        shape, band, tau, amp = (48, 48), (16, 32), 0.8, 0.03
        nu = (tau - 0.5) / 3.0

        tg = RefinedTaylorGreen2D(shape=shape, band=band, tau=tau, u0=amp)
        rho_i, u_i = taylor_green_fields(shape, 0.0, nu, amp)
        plain = periodic_problem("MR-P", "D2Q9", shape, tau,
                                 rho0=rho_i, u0=u_i)
        for _ in range(4):
            tg.run(100)
            plain.run(100)
            _, u_ana = taylor_green_fields(shape, float(tg.time), nu, amp)
            _, u_c = tg.coarse_macroscopic()
            err_ref = relative_l2_error(u_c, u_ana)
            err_plain = relative_l2_error(plain.velocity(), u_ana)
            assert err_ref < 1.5 * err_plain + 5e-4, (tg.time, err_ref,
                                                      err_plain)

    def test_fine_band_consistent_with_coarse(self):
        """The fine solution restricted at coincident nodes equals the
        coarse field there (the restriction wrote it)."""
        tg = RefinedTaylorGreen2D(shape=(48, 48), band=(16, 32))
        tg.run(50)
        rho_c, u_c = tg.coarse_macroscopic()
        rho_f, u_f = tg.fine_macroscopic()
        fx, fy = tg.fine_coordinates()
        # Coarse x=20 corresponds to fine column k with fx=20.
        k = int(np.where(np.isclose(fx, 20.0))[0][0])
        np.testing.assert_allclose(u_f[0][k, ::2], u_c[0][20], atol=1e-12)

    def test_mass_nearly_conserved(self):
        tg = RefinedTaylorGreen2D(shape=(48, 48), band=(16, 32))
        m0 = tg.coarse_macroscopic()[0].mean()
        tg.run(200)
        m1 = tg.coarse_macroscopic()[0].mean()
        # The interface exchange is not telescopingly conservative, but
        # the drift must stay at round-off-accumulation scale.
        assert abs(m1 - m0) / m0 < 1e-5

    def test_linear_interpolation_drifts(self):
        """Ablation: replacing the cubic ghost interpolation with linear
        re-introduces the secular interface error Lagrava et al. describe
        — the reason the cubic stencil is the default."""

        class LinearGhosts(RefinedTaylorGreen2D):
            def _sample_coarse(self, m_c, fx, fy):
                lat = self.lat
                nx, ny = self.shape
                x0 = np.floor(fx).astype(int) % nx
                x1 = (x0 + 1) % nx
                wx = (fx - np.floor(fx))[:, None]
                y0 = np.floor(fy).astype(int) % ny
                y1 = (y0 + 1) % ny
                wy = (fy - np.floor(fy))[None, :]

                def bil(field):
                    return ((1 - wx) * (1 - wy) * field[np.ix_(x0, y0)]
                            + wx * (1 - wy) * field[np.ix_(x1, y0)]
                            + (1 - wx) * wy * field[np.ix_(x0, y1)]
                            + wx * wy * field[np.ix_(x1, y1)])

                rho_c = m_c[0]
                u_c = m_c[1:3] / rho_c
                pi_eq = np.stack([rho_c * u_c[a] * u_c[b]
                                  for a, b in lat.pair_tuples])
                pi_neq_c = m_c[3:] - pi_eq
                return (bil(rho_c),
                        np.stack([bil(u_c[a]) for a in range(2)]),
                        np.stack([bil(pi_neq_c[k])
                                  for k in range(lat.n_pairs)]))

        shape, band, tau, amp = (48, 48), (16, 32), 0.8, 0.03
        nu = (tau - 0.5) / 3.0
        cubic = RefinedTaylorGreen2D(shape=shape, band=band, tau=tau, u0=amp)
        linear = LinearGhosts(shape=shape, band=band, tau=tau, u0=amp)
        cubic.run(300)
        linear.run(300)
        _, u_ana = taylor_green_fields(shape, 300.0, nu, amp)
        err_cubic = relative_l2_error(cubic.coarse_macroscopic()[1], u_ana)
        err_linear = relative_l2_error(linear.coarse_macroscopic()[1], u_ana)
        assert err_linear > 2.0 * err_cubic

    def test_energy_decays_at_physical_rate(self):
        from repro.validation import kinetic_energy, taylor_green_decay_rate

        tg = RefinedTaylorGreen2D(shape=(48, 48), band=(16, 32), tau=0.8,
                                  u0=0.02)
        rho, u = tg.coarse_macroscopic()
        e0 = kinetic_energy(rho, u)
        tg.run(200)
        rho, u = tg.coarse_macroscopic()
        e1 = kinetic_energy(rho, u)
        rate = -np.log(e1 / e0) / 200
        assert rate == pytest.approx(
            taylor_green_decay_rate((48, 48), tg.nu), rel=0.03
        )
