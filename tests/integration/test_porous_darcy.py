"""Integration: forced ST kernel + porous media = Darcy flow on the
virtual GPU."""

import numpy as np
import pytest

from repro.boundary import HalfwayBounceBack
from repro.geometry import Domain
from repro.gpu import KernelProblem, STKernel, V100
from repro.lattice import get_lattice
from repro.solver import STSolver


def porous_setup(shape=(24, 24), fraction=0.15, seed=21, tau=0.8):
    lat = get_lattice("D2Q9")
    rng = np.random.default_rng(seed)
    solid = rng.random(shape) < fraction
    # Keep a connected flow path: clear one full channel row.
    solid[:, shape[1] // 2] = False
    prob = KernelProblem(lat, shape, tau, mode="masked", solid_mask=solid)
    nt = np.zeros(shape, dtype=np.int8)
    nt[solid] = 1
    return lat, prob, Domain(nt), solid


class TestForcedKernelEquivalence:
    def test_matches_forced_reference(self):
        lat, prob, dom, solid = porous_setup()
        force = np.array([2e-5, 0.0])
        ref = STSolver(lat, dom, 0.8, boundaries=[HalfwayBounceBack()],
                       force=force)
        kernel = STKernel(prob, V100, force=force)
        for _ in range(20):
            ref.step()
            kernel.step()
        assert np.abs(kernel.distribution() - ref.f).max() < 1e-13
        rk, uk = kernel.macroscopic_fields()
        rr, ur = ref.macroscopic()
        fluid = ~solid
        assert np.abs(uk - ur)[:, fluid].max() < 1e-13

    def test_forced_periodic_momentum_budget(self):
        lat = get_lattice("D2Q9")
        prob = KernelProblem(lat, (10, 10), 0.8, mode="periodic")
        fx = 1e-4
        kernel = STKernel(prob, V100, force=np.array([fx, 0.0]))
        for _ in range(6):
            kernel.step()
        rho, u = kernel.macroscopic_fields()
        px = (rho * u[0]).sum()
        assert px == pytest.approx(100 * fx * 6.5, rel=1e-10)


class TestDarcy:
    def _mean_velocity(self, force_x, steps=4000):
        lat, prob, dom, solid = porous_setup()
        kernel = STKernel(prob, V100, force=np.array([force_x, 0.0]))
        for _ in range(steps):
            kernel.step()
        _, u = kernel.macroscopic_fields()
        return u[0][~solid].mean()

    def test_darcy_linearity(self):
        """At creeping-flow conditions, mean velocity scales linearly with
        the driving force: <u> = k F / nu (Darcy's law)."""
        u1 = self._mean_velocity(1e-6)
        u2 = self._mean_velocity(2e-6)
        assert u1 > 0
        assert u2 / u1 == pytest.approx(2.0, rel=0.01)

    def test_permeability_below_open_channel(self):
        """The porous medium's permeability is far below the open-channel
        bound k = H^2/12."""
        f = 1e-6
        lat = get_lattice("D2Q9")
        nu = lat.viscosity(0.8)
        u_mean = self._mean_velocity(f)
        k = u_mean * nu / f
        k_open = 22 ** 2 / 12.0          # open channel of the same height
        assert 0 < k < 0.5 * k_open
