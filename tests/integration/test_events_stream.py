"""Integration: live per-rank event streams from the process runtime.

The acceptance scenario of the performance observatory: a multi-rank
``--backend process`` run with ``events_dir`` set writes one append-only
JSONL stream per rank into the run directory, tailable while the cohort
runs (``mrlbm watch``), and the merged report attributes halo-exchange
wait time and load imbalance across the ranks.
"""

import threading

import pytest

from repro.obs.events import (
    event_files,
    iter_events,
    read_events,
    summarize_events,
)
from repro.parallel import RunSpec, run_process


class TestProcessEventStreams:
    def test_four_rank_run_streams_per_rank_events(self, tmp_path):
        run_dir = tmp_path / "run"
        spec = RunSpec("channel", "ST", "D2Q9", (48, 18), 4, tau=0.9,
                       options={"u_max": 0.04},
                       events_dir=str(run_dir), events_every=3)
        result = run_process(spec, 12)

        files = event_files(run_dir)
        assert [p.name for p in files] == [
            f"events-rank{r:04d}.jsonl" for r in range(4)]

        summary = summarize_events(read_events(run_dir))
        assert summary["n_ranks"] == 4 and summary["all_done"]
        for rank, state in summary["ranks"].items():
            assert state["status"] == "done"
            assert state["step"] == 12 and state["fraction"] == 1.0
            assert "step/barrier" in state["phases_s"]

        # The merged report carries the imbalance attribution block.
        imb = result.report["imbalance"]
        assert imb["slowest_rank"] in (0, 1, 2, 3)
        assert imb["imbalance_ratio"] >= 1.0
        assert 0.0 < imb["exchange_wait_share"] < 1.0
        assert len(imb["per_rank"]) == 4
        for rep in result.report["per_rank"]:
            assert rep["exchange_wait_s"] > 0.0

    def test_streams_are_tailable_while_running(self, tmp_path):
        run_dir = tmp_path / "run"
        spec = RunSpec("periodic", "ST", "D2Q9", (32, 16), 2, tau=0.8,
                       events_dir=str(run_dir), events_every=5)
        seen: list[dict] = []
        offsets: dict = {}

        def tail():
            # Incremental reader racing the live writers: scans forward
            # with per-file offsets exactly like `mrlbm watch --follow`.
            while not done.is_set():
                seen.extend(iter_events(run_dir, offsets))
            seen.extend(iter_events(run_dir, offsets))

        done = threading.Event()
        tailer = threading.Thread(target=tail)
        tailer.start()
        try:
            run_process(spec, 60)
        finally:
            done.set()
            tailer.join(timeout=30)
        kinds = [e["kind"] for e in seen]
        assert kinds.count("start") == 2 and kinds.count("end") == 2
        assert kinds.count("heartbeat") >= 2 * (60 // 5)
        summary = summarize_events(seen)
        assert summary["all_done"]
        assert all(s["mlups"] > 0 for s in summary["ranks"].values())

    def test_failed_rank_emits_error_event(self, tmp_path):
        run_dir = tmp_path / "run"
        spec = RunSpec("periodic", "ST", "D2Q9", (24, 12), 2, tau=0.8,
                       fault={"rank": 1, "step": 3, "kind": "exception"},
                       events_dir=str(run_dir), events_every=2)
        from repro.parallel import ParallelRuntimeError

        with pytest.raises(ParallelRuntimeError):
            run_process(spec, 8)
        summary = summarize_events(read_events(run_dir))
        statuses = {r: s["status"] for r, s in summary["ranks"].items()}
        assert statuses[1] == "error"
        assert summary["ranks"][1]["error"].startswith("FaultInjected")
