"""Integration: pulsatile (Womersley-type) channel flow.

Time-dependent body forcing via Solver.set_force, validated against the
analytic oscillatory-channel solution — the canonical hemodynamics
benchmark of the moment representation's application domain.
"""

import numpy as np
import pytest

from repro.solver import forced_channel_problem
from repro.validation import womersley_number, womersley_profile


def run_pulsatile(scheme: str, shape=(10, 26), tau=0.8, period=1200,
                  amplitude=1e-5, cycles=4):
    nu = (tau - 0.5) / 3.0
    omega = 2 * np.pi / period
    s = forced_channel_problem(scheme, "D2Q9", shape, tau=tau, u_max=0.01)
    errs = []
    peak = max(
        np.abs(womersley_profile(shape[1], t, amplitude, omega, nu)).max()
        for t in range(0, period, period // 16)
    )
    for t in range(cycles * period):
        # Mid-step force for second-order time coupling.
        s.set_force([amplitude * np.cos(omega * (s.time + 0.5)), 0.0])
        s.run(1)
        if t >= (cycles - 1) * period and t % (period // 8) == 0:
            ana = womersley_profile(shape[1], s.time, amplitude, omega, nu)
            ux = s.velocity()[0][shape[0] // 2]
            errs.append(np.abs(ux[1:-1] - ana[1:-1]).max() / peak)
    return max(errs), omega, nu


class TestWomersley:
    @pytest.mark.parametrize("scheme", ["ST", "MR-P", "MR-R"])
    def test_profile_accuracy(self, scheme):
        err, omega, nu = run_pulsatile(scheme)
        assert err < 0.02, (scheme, err)

    def test_womersley_number_regime(self):
        _, omega, nu = run_pulsatile("MR-P", cycles=1)
        alpha = womersley_number(26, omega, nu)
        assert 1.5 < alpha < 4.0          # genuinely unsteady regime

    def test_profile_phase_lag(self):
        """At alpha > 1 the centreline velocity lags the force: when the
        force peaks, the flow is still accelerating."""
        shape, tau, period, amplitude = (10, 26), 0.8, 1200, 1e-5
        nu = (tau - 0.5) / 3.0
        omega = 2 * np.pi / period
        s = forced_channel_problem("MR-P", "D2Q9", shape, tau=tau, u_max=0.01)
        centre = []
        for t in range(3 * period):
            s.set_force([amplitude * np.cos(omega * (s.time + 0.5)), 0.0])
            s.run(1)
            if t >= 2 * period:
                centre.append(s.velocity()[0][5, shape[1] // 2])
        centre = np.asarray(centre)
        # Flow peak lags the force peak (t=0 of the cycle) by a positive
        # phase; analytic lag = angle of 1/(i w) (1 - 1/cosh(kh)) term.
        lag_steps = int(np.argmax(centre))
        ana = [womersley_profile(shape[1], 2 * period + k, amplitude,
                                 omega, nu)[shape[1] // 2]
               for k in range(period)]
        ana_lag = int(np.argmax(ana))
        assert abs(lag_steps - ana_lag) <= period // 16


class TestSetForce:
    def test_requires_forced_solver(self):
        from repro.solver import periodic_problem

        s = periodic_problem("MR-P", "D2Q9", (8, 8), 0.8)
        with pytest.raises(ValueError, match="without forcing"):
            s.set_force([1e-4, 0.0])

    def test_zeroes_solids(self):
        s = forced_channel_problem("MR-P", "D2Q9", (8, 10), u_max=0.01)
        s.set_force([5e-5, 0.0])
        assert np.allclose(s.force[:, s.domain.solid_mask], 0.0)
        assert np.allclose(s.force[0][~s.domain.solid_mask], 5e-5)

    def test_in_place_update(self):
        """set_force mutates the existing array (kernels keep their view)."""
        s = forced_channel_problem("ST", "D2Q9", (8, 10), u_max=0.01)
        ref = s.force
        s.set_force([7e-5, 0.0])
        assert s.force is ref
