"""Extension bench: halo-exchange volume of the distributed solvers.

The moment representation compresses inter-device traffic exactly as it
compresses DRAM traffic: an MR rank exchanges M moments per cut-face node
(10 for D3Q19) against 2Q for a naive full exchange — with crossing-only
ST packing (5 components per direction) as the lean reference point. The
bench also verifies the distributed solvers reproduce single-domain
physics while the accounting runs.
"""

import numpy as np
from conftest import run_once

from repro.bench import render_table
from repro.parallel import distributed_periodic_problem
from repro.solver import periodic_problem
from repro.validation import taylor_green_fields


def _measure():
    shape2, shape3 = (32, 16), (16, 10, 10)
    out = {}
    for lattice, shape in (("D2Q9", shape2), ("D3Q19", shape3)):
        row = {}
        for label, scheme, kwargs in (
            ("MR", "MR-P", {}),
            ("ST-crossing", "ST", {}),
            ("ST-full", "ST", {"st_exchange": "full"}),
        ):
            d = distributed_periodic_problem(scheme, lattice, shape, 2, 0.8,
                                             **kwargs)
            d.run(3)
            row[label] = {
                "per_face": d.communication_values_per_face(),
                "bytes_per_step": d.comm.bytes_per_step(),
            }
        out[lattice] = row
    return out


def test_halo_volume(benchmark, write_result):
    data = run_once(benchmark, _measure)

    rows = []
    for lattice, row in data.items():
        for label, v in row.items():
            rows.append([lattice, label, v["per_face"],
                         f"{v['bytes_per_step']:,.0f}"])
    write_result("communication_volume.txt", render_table(
        ["lattice", "exchange", "doubles/face", "bytes/step"], rows,
        "Halo-exchange volume (distributed extension)"))

    for lattice, q, q_cross, m in (("D2Q9", 9, 3, 6), ("D3Q19", 19, 5, 10)):
        row = data[lattice]
        face = row["ST-full"]["per_face"] // (2 * q)
        assert row["ST-full"]["per_face"] == 2 * q * face
        assert row["ST-crossing"]["per_face"] == 2 * q_cross * face
        assert row["MR"]["per_face"] == 2 * m * face
        # The compression claim on the wire: M < Q.
        assert row["MR"]["per_face"] < row["ST-full"]["per_face"]


def test_distributed_correctness_under_accounting(benchmark):
    """Physics stays exact while the communication meter runs."""
    shape = (30, 12)
    rho0, u0 = taylor_green_fields(shape, 0.0, 0.1, 0.04)

    def compute():
        ref = periodic_problem("MR-R", "D2Q9", shape, 0.8, rho0=rho0, u0=u0)
        dist = distributed_periodic_problem("MR-R", "D2Q9", shape, 3, 0.8,
                                            rho0=rho0, u0=u0)
        ref.run(5)
        dist.run(5)
        rg, ug = dist.gather_macroscopic()
        rr, ur = ref.macroscopic()
        return np.abs(ug - ur).max(), dist.comm.bytes_sent

    diff, total_bytes = run_once(benchmark, compute)
    assert diff < 1e-13
    assert total_bytes > 0
