"""E3 — regenerate paper Table 3 (roofline MFLUPS estimates, Eq. 15)."""

import pytest
from conftest import run_once

from repro.bench import render_table, table3_roofline

# Paper Table 3 values.
PAPER = {
    ("ST", "V100", "D2Q9"): 6250, ("ST", "V100", "D3Q19"): 2960,
    ("ST", "MI100", "D2Q9"): 8533, ("ST", "MI100", "D3Q19"): 4042,
    ("MR", "V100", "D2Q9"): 9375, ("MR", "V100", "D3Q19"): 5625,
    ("MR", "MI100", "D2Q9"): 12800, ("MR", "MI100", "D3Q19"): 7680,
}


def test_table3_roofline(benchmark, write_result):
    data = run_once(benchmark, table3_roofline)

    rows = []
    for r in data["rows"]:
        rows.append([r["pattern"]] + [
            f"{r[(dev, lat)]:,.0f}"
            for dev in ("V100", "MI100") for lat in ("D2Q9", "D3Q19")
        ])
    text = render_table(
        ["Model", "V100 D2Q9", "V100 D3Q19", "MI100 D2Q9", "MI100 D3Q19"],
        rows, "Table 3 — roofline MFLUPS (Eq. 15)")
    write_result("table3_roofline.txt", text)

    for r in data["rows"]:
        for dev in ("V100", "MI100"):
            for lat in ("D2Q9", "D3Q19"):
                assert r[(dev, lat)] == pytest.approx(
                    PAPER[(r["pattern"], dev, lat)], rel=0.005
                )
