"""E16 (extension) — complex-geometry traffic (paper reference [4]).

Herschlag, Lee, Vetter & Randles (2021) analysed GPU data-access patterns
for D3Q19 on complex geometries; the paper builds on that line. Here the
masked-mode ST kernel runs porous random geometries on the virtual GPU and
measures the direct-addressing penalty: DRAM bytes per *fluid* lattice
update as a function of fluid fraction, plus the predicted MFLUPS hit.
"""

import numpy as np
import pytest
from conftest import run_once

from repro.bench import render_table
from repro.gpu import KernelProblem, MemoryTracker, MRKernel, STKernel, V100
from repro.lattice import get_lattice
from repro.perf import PerformanceModel

FRACTIONS = (0.0, 0.1, 0.2, 0.3, 0.4)


def _measure(fraction_solid, shape=(96, 96), seed=11):
    lat = get_lattice("D2Q9")
    rng = np.random.default_rng(seed)
    solid = rng.random(shape) < fraction_solid
    prob = KernelProblem(lat, shape, 0.8, mode="masked", solid_mask=solid)
    n_fluid = int((~solid).sum())
    out = {"fluid_fraction": n_fluid / solid.size, "n_fluid": n_fluid}
    from repro.gpu import STIndirectKernel

    for label, build in (
        ("ST", lambda tr: STKernel(prob, V100, tracker=tr)),
        ("MR", lambda tr: MRKernel(prob, V100, scheme="MR-P",
                                   tile_cross=(16,), tracker=tr)),
        ("ST-ind", lambda tr: STIndirectKernel(prob, V100, tracker=tr)),
    ):
        tracker = MemoryTracker(l2_bytes=int(V100.l2_kb * 1024))
        kernel = build(tracker)
        kernel.step()
        stats = kernel.step()
        out[label] = stats.traffic.sector_bytes_total / n_fluid
    out["bytes_per_fluid"] = out["ST"]
    return out


def test_porosity_sweep(benchmark, write_result):
    results = run_once(benchmark, lambda: [_measure(f) for f in FRACTIONS])

    pm = PerformanceModel(V100)
    lat = get_lattice("D2Q9")
    rows = []
    for r in results:
        st_pred = pm.predict_shape(lat, "ST", (4096, 4096),
                                   bytes_per_node=r["ST"])
        mr_pred = pm.predict_shape(lat, "MR-P", (4096, 4096),
                                   tile_cross=(16,), w_t=8,
                                   bytes_per_node=r["MR"])
        r["mflups"] = st_pred.mflups
        r["mr_mflups"] = mr_pred.mflups
        rows.append([f"{r['fluid_fraction']:.2f}",
                     f"{r['ST']:.1f}", f"{r['ST-ind']:.1f}", f"{r['MR']:.1f}",
                     f"{st_pred.mflups:,.0f}", f"{mr_pred.mflups:,.0f}",
                     f"{mr_pred.mflups / st_pred.mflups:.2f}x"])
    write_result("complex_geometry.txt", render_table(
        ["fluid frac", "ST B/fluid", "ST-ind B/fluid", "MR B/fluid",
         "ST MFLUPS", "MR MFLUPS", "MR speedup"],
        rows, "Direct vs indirect vs MR on porous geometries (E16)"))

    # Monotone: less fluid -> more bytes per fluid update -> fewer MFLUPS.
    b = [r["ST"] for r in results]
    m = [r["mflups"] for r in results]
    assert all(b[i] < b[i + 1] for i in range(len(b) - 1))
    assert all(m[i] > m[i + 1] for i in range(len(m) - 1))
    # The all-fluid case sits on the ideal 2Q B/F plus the ~1 B geometry
    # fetch; at 60% fluid the penalty is substantial but below the naive
    # 1/phi bound (solid threads are masked out of reads and writes).
    assert results[0]["ST"] == pytest.approx(145.4, abs=2)
    naive = results[0]["ST"] / results[-1]["fluid_fraction"]
    assert results[-1]["ST"] < naive
    # The MR advantage persists (and grows slightly) on porous media: the
    # moment representation moves fewer bytes per fluid update everywhere.
    for r in results:
        assert r["MR"] < 0.75 * r["ST"], r["fluid_fraction"]
        assert r["mr_mflups"] > r["mflups"]

    # Indirect addressing (Herschlag et al.): porosity-independent
    # 2Q x 8 + 4Q = 180 B per fluid update, crossing over dense direct
    # addressing at fluid fraction ~ 0.8 for D2Q9.
    for r in results:
        assert r["ST-ind"] == pytest.approx(180, abs=2), r["fluid_fraction"]
    assert results[0]["ST"] < results[0]["ST-ind"]     # open: direct wins
    assert results[-1]["ST"] > results[-1]["ST-ind"]   # porous: indirect wins
    # The MR column kernel undercuts both at every porosity.
    for r in results:
        assert r["MR"] < min(r["ST"], r["ST-ind"])
