"""Backend MLUPS comparison: fused fast path vs reference solvers.

The acceptance bar for the fast-path backend is a >=2x host MLUPS win on
a D3Q19 case (see docs/PERFORMANCE.md); CI asserts a conservative 1.5x
band so a loaded runner cannot flake the suite, while the rendered
artefact in ``benchmarks/results/`` records the actually measured ratio
(~3x on an unloaded host).
"""

import numpy as np

from repro.obs import compare_backends, format_backend_comparison


class TestBackendThroughput:
    def test_d3q19_fused_speedup(self, write_result, write_bench_records):
        """Fused MR-P on D3Q19 clears the speedup band at machine parity."""
        result = compare_backends("MR-P", "D3Q19", shape=(40, 40, 40),
                                  steps=12)
        write_result("backend_mlups_d3q19.txt",
                     format_backend_comparison(result))
        write_bench_records("backend_mlups_d3q19.json", result)

        rows = {row["backend"]: row for row in result["backends"]}
        fused = rows["fused"]
        assert fused["max_abs_diff"] < 1e-13
        assert fused["speedup"] >= 1.5
        # Telemetry reports both backends side by side from the same run.
        assert rows["reference"]["mlups"] > 0
        assert set(rows) >= {"reference", "fused"}

    def test_d2q9_fused_parity_and_gain(self, write_result,
                                        write_bench_records):
        result = compare_backends("ST", "D2Q9", shape=(160, 160), steps=20)
        write_result("backend_mlups_d2q9.txt",
                     format_backend_comparison(result))
        write_bench_records("backend_mlups_d2q9.json", result)
        rows = {row["backend"]: row for row in result["backends"]}
        assert rows["fused"]["max_abs_diff"] < 1e-13
        assert rows["fused"]["speedup"] >= 1.2
        assert np.isfinite([r["mlups"] for r in result["backends"]]).all()

    def test_forced_channel_fused_speedup(self, write_result,
                                          write_bench_records):
        """The fused Guo-source path keeps the speedup band under forcing."""
        result = compare_backends("MR-P", "D2Q9", shape=(160, 120), steps=16,
                                  problem="forced-channel")
        write_result("backend_mlups_forced_d2q9.txt",
                     format_backend_comparison(result))
        write_bench_records("backend_mlups_forced_d2q9.json", result)
        rows = {row["backend"]: row for row in result["backends"]}
        assert result["problem"] == "forced-channel"
        assert rows["fused"]["max_abs_diff"] < 1e-13
        assert rows["fused"]["speedup"] >= 1.5

    def test_forced_channel_d3q19(self, write_result, write_bench_records):
        result = compare_backends("ST", "D3Q19", shape=(32, 24, 24), steps=10,
                                  problem="forced-channel")
        write_result("backend_mlups_forced_d3q19.txt",
                     format_backend_comparison(result))
        write_bench_records("backend_mlups_forced_d3q19.json", result)
        rows = {row["backend"]: row for row in result["backends"]}
        assert rows["fused"]["max_abs_diff"] < 1e-13
        assert rows["fused"]["speedup"] >= 1.5

    def test_power_law_fused_speedup(self, write_result, write_bench_records):
        """Variable-tau (power-law) collision clears the acceptance band."""
        result = compare_backends(lattice="D2Q9", shape=(256, 192), steps=12,
                                  problem="power-law")
        write_result("backend_mlups_power_law_d2q9.txt",
                     format_backend_comparison(result))
        write_bench_records("backend_mlups_power_law_d2q9.json", result)
        rows = {row["backend"]: row for row in result["backends"]}
        assert result["scheme"] == "MR-P-PL"
        assert rows["fused"]["max_abs_diff"] < 1e-13
        assert rows["fused"]["speedup"] >= 1.5
