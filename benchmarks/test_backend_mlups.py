"""Backend MLUPS comparison: fused fast path vs reference solvers.

The acceptance bar for the fast-path backend is a >=2x host MLUPS win on
a D3Q19 case (see docs/PERFORMANCE.md); CI asserts a conservative 1.5x
band so a loaded runner cannot flake the suite, while the rendered
artefact in ``benchmarks/results/`` records the actually measured ratio
(~3x on an unloaded host).
"""

import numpy as np

from repro.obs import compare_backends, format_backend_comparison


class TestBackendThroughput:
    def test_d3q19_fused_speedup(self, write_result, write_bench_records):
        """Fused MR-P on D3Q19 clears the speedup band at machine parity."""
        result = compare_backends("MR-P", "D3Q19", shape=(40, 40, 40),
                                  steps=12)
        write_result("backend_mlups_d3q19.txt",
                     format_backend_comparison(result))
        write_bench_records("backend_mlups_d3q19.json", result)

        rows = {row["backend"]: row for row in result["backends"]}
        fused = rows["fused"]
        assert fused["max_abs_diff"] < 1e-13
        assert fused["speedup"] >= 1.5
        # Telemetry reports both backends side by side from the same run.
        assert rows["reference"]["mlups"] > 0
        assert set(rows) >= {"reference", "fused"}

    def test_d2q9_fused_parity_and_gain(self, write_result,
                                        write_bench_records):
        result = compare_backends("ST", "D2Q9", shape=(160, 160), steps=20)
        write_result("backend_mlups_d2q9.txt",
                     format_backend_comparison(result))
        write_bench_records("backend_mlups_d2q9.json", result)
        rows = {row["backend"]: row for row in result["backends"]}
        assert rows["fused"]["max_abs_diff"] < 1e-13
        assert rows["fused"]["speedup"] >= 1.2
        assert np.isfinite([r["mlups"] for r in result["backends"]]).all()

    def test_forced_channel_fused_speedup(self, write_result,
                                          write_bench_records):
        """The fused Guo-source path keeps the speedup band under forcing."""
        result = compare_backends("MR-P", "D2Q9", shape=(160, 120), steps=16,
                                  problem="forced-channel")
        write_result("backend_mlups_forced_d2q9.txt",
                     format_backend_comparison(result))
        write_bench_records("backend_mlups_forced_d2q9.json", result)
        rows = {row["backend"]: row for row in result["backends"]}
        assert result["problem"] == "forced-channel"
        assert rows["fused"]["max_abs_diff"] < 1e-13
        assert rows["fused"]["speedup"] >= 1.5

    def test_forced_channel_d3q19(self, write_result, write_bench_records):
        result = compare_backends("ST", "D3Q19", shape=(32, 24, 24), steps=10,
                                  problem="forced-channel")
        write_result("backend_mlups_forced_d3q19.txt",
                     format_backend_comparison(result))
        write_bench_records("backend_mlups_forced_d3q19.json", result)
        rows = {row["backend"]: row for row in result["backends"]}
        assert rows["fused"]["max_abs_diff"] < 1e-13
        assert rows["fused"]["speedup"] >= 1.5

    def test_power_law_fused_speedup(self, write_result, write_bench_records):
        """Variable-tau (power-law) collision clears the acceptance band."""
        result = compare_backends(lattice="D2Q9", shape=(256, 192), steps=12,
                                  problem="power-law")
        write_result("backend_mlups_power_law_d2q9.txt",
                     format_backend_comparison(result))
        write_bench_records("backend_mlups_power_law_d2q9.json", result)
        rows = {row["backend"]: row for row in result["backends"]}
        assert result["scheme"] == "MR-P-PL"
        assert rows["fused"]["max_abs_diff"] < 1e-13
        assert rows["fused"]["speedup"] >= 1.5


class TestBatchedEnsembleThroughput:
    def test_small_domain_ensemble_speedup(self, write_result):
        """A 16-member 32^2 ensemble beats per-run fused dispatch >= 2x.

        Small domains are exactly where per-run dispatch overhead
        dominates; the acceptance bar for the batched cores (see
        docs/PERFORMANCE.md) is a >= 2x aggregate-MLUPS win at
        machine-precision per-member parity (measured ~3.8x unloaded).
        """
        import json
        import time

        from repro.ensemble import EnsembleRunner
        from repro.lattice import get_lattice
        from repro.solver import periodic_problem
        from repro.validation import taylor_green_fields

        lat = get_lattice("D2Q9")
        shape, steps, batch = (32, 32), 24, 16
        taus = [0.6 + 0.02 * k for k in range(batch)]

        def members():
            out = []
            for k, tau in enumerate(taus):
                rho0, u0 = taylor_green_fields(shape, 0.0,
                                               lat.viscosity(tau),
                                               0.02 + 0.002 * k)
                out.append(periodic_problem("MR-P", lat, shape, tau,
                                            rho0=rho0, u0=u0,
                                            backend="fused"))
            return out

        n_fluid = batch * shape[0] * shape[1]
        serial_wall = float("inf")
        serial_members = None
        for _ in range(2):
            solos = members()
            t0 = time.perf_counter()
            for s in solos:
                s.run(steps)
            wall = time.perf_counter() - t0
            if wall < serial_wall:
                serial_wall, serial_members = wall, solos

        batched_wall = float("inf")
        batched_members = None
        for _ in range(2):
            enrolled = members()
            runner = EnsembleRunner(enrolled)
            t0 = time.perf_counter()
            runner.run(steps)
            wall = time.perf_counter() - t0
            if wall < batched_wall:
                batched_wall, batched_members = wall, enrolled

        diffs = []
        for solo, member in zip(serial_members, batched_members):
            rho_s, u_s = solo.macroscopic()
            rho_m, u_m = member.macroscopic()
            diffs.append(max(float(np.abs(rho_s - rho_m).max()),
                             float(np.abs(u_s - u_m).max())))
        speedup = serial_wall / batched_wall
        summary = {
            "scheme": "MR-P", "lattice": "D2Q9", "shape": list(shape),
            "batch": batch, "steps": steps,
            "serial_mlups": n_fluid * steps / serial_wall / 1e6,
            "batched_mlups": n_fluid * steps / batched_wall / 1e6,
            "speedup": speedup,
            "max_abs_diff": max(diffs),
        }
        write_result(
            "ensemble_batched_speedup.txt",
            f"batched ensemble MR-P D2Q9 {shape} x{batch}, {steps} steps\n"
            f"serial  {summary['serial_mlups']:8.2f} MLUPS aggregate\n"
            f"batched {summary['batched_mlups']:8.2f} MLUPS aggregate\n"
            f"speedup {speedup:.2f}x  max |diff| {max(diffs):.3e}\n")
        write_result("ensemble_batched_speedup.json",
                     json.dumps(summary, indent=2))
        assert max(diffs) < 1e-13        # per-member machine parity
        assert speedup >= 2.0            # acceptance: >= 2x aggregate
