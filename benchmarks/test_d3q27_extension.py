"""E10 — Section 5 future work: single-speed D3Q27.

The paper motivates D3Q27 because "their increased runtime is often cited
as a reason for not using them": the moment space stays at M = 10, so the
MR footprint/traffic advantage grows from 47% (Q19) to 63% (Q27). We also
exercise the occupancy consequence: the Q27 column kernel no longer fits
two blocks per CU in the MI100's 64 KB LDS.
"""

import numpy as np
import pytest
from conftest import run_once

from repro.bench import render_table
from repro.gpu import MI100, V100, KernelProblem, MemoryTracker, MRKernel, STKernel
from repro.lattice import get_lattice
from repro.perf import (
    PerformanceModel,
    bytes_per_flup,
    memory_reduction,
    mr_launch_config,
)
from repro.gpu.launch import occupancy


def _measure_q27():
    """Measure D3Q27 kernel traffic on a reduced periodic box."""
    lat = get_lattice("D3Q27")
    shape = (16, 48, 48)
    rng = np.random.default_rng(0)
    rho0 = 1 + 0.02 * rng.standard_normal(shape)
    u0 = 0.02 * rng.standard_normal((3, *shape))
    prob = KernelProblem(lat, shape, 0.8, mode="periodic")
    out = {}
    for name, ctor in (
        ("ST", lambda tr: STKernel(prob, V100, tracker=tr, rho0=rho0, u0=u0)),
        ("MR", lambda tr: MRKernel(prob, V100, scheme="MR-P",
                                   tile_cross=(8, 8), tracker=tr,
                                   rho0=rho0, u0=u0)),
    ):
        tr = MemoryTracker(l2_bytes=int(V100.l2_kb * 1024))
        k = ctor(tr)
        k.step()
        stats = k.step()
        out[name] = stats.traffic.sector_bytes_total / stats.n_nodes
    return out


def test_d3q27_traffic_and_speedup(benchmark, write_result):
    traffic = run_once(benchmark, _measure_q27)
    lat = get_lattice("D3Q27")

    # Ideal B/F: 432 (ST) vs 160 (MR) — a 63% reduction.
    assert bytes_per_flup(lat, "ST") == 432
    assert bytes_per_flup(lat, "MR") == 160
    assert memory_reduction(lat) == pytest.approx(1 - 10 / 27, abs=1e-6)
    assert traffic["ST"] == pytest.approx(432, rel=0.03)
    assert traffic["MR"] == pytest.approx(160, rel=0.02)

    # Projected speedups with the calibrated model (3D efficiencies). The
    # occupancy term makes tile choice device-dependent: the 8x8 column
    # kernel fits 2 blocks/SM on the V100 but only 1 per CU on the MI100's
    # 64 KB LDS, where an 8x4 tile must be used instead — exactly the
    # "emerging GPU architectures feature significantly larger cache
    # sizes" motivation of Section 5.
    rows = []
    for dev, tile in ((V100, (8, 8)), (MI100, (8, 4))):
        pm = PerformanceModel(dev)
        st = pm.predict_shape(lat, "ST", (256, 256, 256),
                              bytes_per_node=traffic["ST"])
        mrp = pm.predict_shape(lat, "MR-P", (256, 256, 256),
                               tile_cross=tile,
                               bytes_per_node=traffic["MR"])
        rows.append([dev.name, str(tile), f"{st.mflups:,.0f}",
                     f"{mrp.mflups:,.0f}", f"{mrp.mflups / st.mflups:.2f}x"])
        assert mrp.occupancy.meets_two_block_rule, dev.name
        assert mrp.mflups / st.mflups > 1.25, dev.name

    # With the naive 8x8 tile, the MI100 occupancy cliff actually makes
    # MR-P *lose* to ST — the predicted reason Q27 needed future work.
    pm = PerformanceModel(MI100)
    st = pm.predict_shape(lat, "ST", (256, 256, 256),
                          bytes_per_node=traffic["ST"])
    naive = pm.predict_shape(lat, "MR-P", (256, 256, 256),
                             tile_cross=(8, 8),
                             bytes_per_node=traffic["MR"])
    assert naive.occupancy.blocks_per_sm == 1
    assert naive.mflups < st.mflups
    rows.append(["MI100", "(8, 8) naive", f"{st.mflups:,.0f}",
                 f"{naive.mflups:,.0f}", f"{naive.mflups / st.mflups:.2f}x"])

    write_result("d3q27_extension.txt", render_table(
        ["device", "tile", "ST MFLUPS", "MR-P MFLUPS", "speedup"], rows,
        "D3Q27 extension (Section 5 future work)"))


def test_d3q27_occupancy_cliff(benchmark):
    """Q27 shared-memory appetite: 2 blocks/SM on V100, 1 on MI100."""
    lat = get_lattice("D3Q27")

    def compute():
        cfg = mr_launch_config(lat, (256, 256, 256), (8, 8))
        return occupancy(V100, cfg), occupancy(MI100, cfg), cfg

    occ_v, occ_a, cfg = run_once(benchmark, compute)
    assert cfg.shared_bytes_per_block == 8 * 8 * 3 * 27 * 8
    assert occ_v.blocks_per_sm == 2
    assert occ_a.blocks_per_sm == 1
    assert not occ_a.meets_two_block_rule

    # The model folds the cliff into a utilization penalty on MI100.
    pm = PerformanceModel(MI100)
    pred = pm.predict_shape(lat, "MR-P", (256, 256, 256), tile_cross=(8, 8))
    assert pred.occupancy.blocks_per_sm == 1
