"""E11 (extension) — multi-speed D3Q39, the paper's other future-work item.

"Further research with the moment representation should focus on lattices
with a large number of components, such as the single-speed D3Q27, and
multi-speed lattices such as D3Q39, because their increased runtime is
often cited as a reason for not using them" (Section 5).

The moment space stays at M = 10 while Q grows to 39 (and the state is
still lossless under regularized collisions, verified in the test suite),
so MR cuts the D3Q39 footprint and roofline traffic by 74% — the largest
relative win of any lattice in the library.
"""

import pytest
from conftest import run_once

from repro.bench import render_table
from repro.gpu import MI100, V100
from repro.lattice import get_lattice
from repro.perf import (
    bytes_per_flup,
    memory_reduction,
    roofline_mflups,
    state_gib,
)


def _compute():
    q39 = get_lattice("D3Q39")
    rows = []
    for pattern in ("ST", "MR"):
        rows.append({
            "pattern": pattern,
            "bf": bytes_per_flup(q39, pattern),
            "gib_15m": state_gib(q39, pattern, 15_000_000),
            "roofline_v100": roofline_mflups(V100, q39, pattern),
            "roofline_mi100": roofline_mflups(MI100, q39, pattern),
        })
    return q39, rows


def test_d3q39_roofline_and_footprint(benchmark, write_result):
    q39, rows = run_once(benchmark, _compute)

    write_result("d3q39_multispeed.txt", render_table(
        ["pattern", "B/F", "GiB@15M", "V100 roofline", "MI100 roofline"],
        [[r["pattern"], r["bf"], f"{r['gib_15m']:.2f}",
          f"{r['roofline_v100']:,.0f}", f"{r['roofline_mi100']:,.0f}"]
         for r in rows],
        "D3Q39 multi-speed extension (Section 5 future work)"))

    by_p = {r["pattern"]: r for r in rows}
    assert by_p["ST"]["bf"] == 624
    assert by_p["MR"]["bf"] == 160
    assert memory_reduction(q39) == pytest.approx(1 - 10 / 39, abs=1e-9)
    # MR turns a ~1.4 GFLUP/s lattice into a ~5.6 GFLUP/s one on the V100
    # roofline — the "increased runtime" objection largely evaporates.
    assert by_p["ST"]["roofline_v100"] == pytest.approx(1442, rel=0.01)
    assert by_p["MR"]["roofline_v100"] == pytest.approx(5625, rel=0.01)
    # The 15M-node state drops below the V100's 16 GB comfortably.
    assert by_p["ST"]["gib_15m"] > 8.5
    assert by_p["MR"]["gib_15m"] < 2.3
