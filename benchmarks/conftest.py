"""Shared infrastructure for the paper-regeneration benchmark suite.

Every benchmark writes its rendered artefact (table or figure series) to
``benchmarks/results/`` so the reproduction output is inspectable after a
run, and asserts the *shape* bands from DESIGN.md (who wins, by roughly
what factor) rather than exact MFLUPS. Throughput benchmarks additionally
emit a machine-readable ``.json`` twin of each ``.txt`` artefact using the
:mod:`repro.obs.bench` record schema, so external tooling (and ``mrlbm
bench``'s trajectory files) share one format.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def write_result(results_dir):
    """Callable writing a named artefact into benchmarks/results/."""

    def _write(name: str, text: str) -> Path:
        path = results_dir / name
        path.write_text(text if text.endswith("\n") else text + "\n")
        return path

    return _write


@pytest.fixture
def write_bench_records(results_dir):
    """Callable writing a ``compare_backends`` result as schema-valid JSON.

    Converts the comparison into :mod:`repro.obs.bench` records (one per
    backend, validated against ``RECORD_SCHEMA``) and writes them under
    ``benchmarks/results/<name>.json`` next to the rendered text artefact.
    """
    from repro.obs import BENCH_SCHEMA_VERSION, records_from_comparison

    def _write(name: str, result: dict) -> Path:
        records = records_from_comparison(result, suite="paper-bench")
        path = results_dir / name
        path.write_text(json.dumps(
            {"schema_version": BENCH_SCHEMA_VERSION, "suite": "paper-bench",
             "records": records},
            indent=2, sort_keys=True) + "\n")
        return path

    return _write


def run_once(benchmark, fn):
    """Benchmark a deterministic regeneration function with one round."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
