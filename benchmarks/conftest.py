"""Shared infrastructure for the paper-regeneration benchmark suite.

Every benchmark writes its rendered artefact (table or figure series) to
``benchmarks/results/`` so the reproduction output is inspectable after a
run, and asserts the *shape* bands from DESIGN.md (who wins, by roughly
what factor) rather than exact MFLUPS.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def write_result(results_dir):
    """Callable writing a named artefact into benchmarks/results/."""

    def _write(name: str, text: str) -> Path:
        path = results_dir / name
        path.write_text(text if text.endswith("\n") else text + "\n")
        return path

    return _write


def run_once(benchmark, fn):
    """Benchmark a deterministic regeneration function with one round."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
