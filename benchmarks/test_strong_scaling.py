"""Extension bench: strong scaling of the multiprocess slab runtime.

Runs one fixed channel problem across an increasing rank count with the
``process`` backend (real OS processes over shared memory, the runtime
behind ``mrlbm run --backend process``), records the per-rank and cohort
MLUPS from the merged telemetry report, and cross-checks three
invariants that must hold at any scale:

* every rank count reproduces the single-domain reference solver to
  machine precision (the halo protocol is exact);
* exchange volume grows linearly with the number of interior cut faces
  while the MR payload stays at M doubles per face node;
* the merged report accounts every interior fluid node exactly once.

Wall-clock speedup is *recorded but not asserted* — CI machines may
expose a single core, where the barrier-synchronized cohort legitimately
shows no strong scaling.
"""

import numpy as np
from conftest import run_once

from repro.bench import render_table
from repro.parallel import RunSpec, run_process
from repro.solver import channel_problem

SHAPE = (48, 20)
STEPS = 30
TAU = 0.9
U_MAX = 0.04
RANK_COUNTS = (1, 2, 4)
SCHEME = "MR-P"


def _measure():
    ref = channel_problem(SCHEME, "D2Q9", SHAPE, tau=TAU, u_max=U_MAX,
                          bc_method="nebb", outlet_tangential="zero")
    ref.run(STEPS)
    _, u_ref = ref.macroscopic()

    out = []
    for n_ranks in RANK_COUNTS:
        spec = RunSpec("channel", SCHEME, "D2Q9", SHAPE, n_ranks, tau=TAU,
                       options={"u_max": U_MAX})
        result = run_process(spec, STEPS)
        out.append({
            "ranks": n_ranks,
            "max_diff": float(np.abs(result.u - u_ref).max()),
            "mlups": result.report["mlups"],
            "wall_s": result.wall_s,
            "bytes_per_step": result.comm.bytes_per_step(),
            "n_fluid": result.report["n_fluid"],
            "barrier_s": result.report["phases"]["step/barrier"]["total_s"],
            "compute_s": result.report["phases"]["step/compute"]["total_s"],
        })
    return out


def test_strong_scaling(benchmark, write_result):
    data = run_once(benchmark, _measure)

    rows = [[d["ranks"], f"{d['mlups']:.2f}", f"{d['wall_s']:.2f}",
             f"{d['bytes_per_step']:,.0f}", f"{d['compute_s']:.2f}",
             f"{d['barrier_s']:.2f}", f"{d['max_diff']:.1e}"]
            for d in data]
    write_result("strong_scaling.txt", render_table(
        ["ranks", "MLUPS", "wall s", "B/step", "compute s", "barrier s",
         "max|u| err"], rows,
        f"Strong scaling — {SCHEME} channel {SHAPE}, {STEPS} steps "
        "(process backend)"))

    lat_m, face_nodes = 6, SHAPE[1]          # D2Q9: M = 6 moments
    for d in data:
        # Exact at every rank count.
        assert d["max_diff"] < 1e-13
        # MR payload: one interior cut per rank boundary, both directions.
        cuts = d["ranks"] - 1
        assert d["bytes_per_step"] == 2 * cuts * lat_m * face_nodes * 8
        # Every interior fluid node owned exactly once.
        assert d["n_fluid"] == data[0]["n_fluid"]
