"""E8 — Section 5 headline speedups of MR-P over ST.

"speedups of up to 1.32x and 1.38x for the D2Q9 lattice on the NVIDIA
V100 and MI100 GPUs, respectively, as well as speedups of 1.46x and 1.14x
for the D3Q19 lattice."
"""

import pytest
from conftest import run_once

from repro.bench import render_table, speedup_summary


def test_speedups(benchmark, write_result):
    rows = run_once(benchmark, speedup_summary)

    text = render_table(
        ["device", "lattice", "ST", "MR-P", "speedup", "paper"],
        [[r["device"], r["lattice"], f"{r['st_mflups']:,.0f}",
          f"{r['mrp_mflups']:,.0f}", f"{r['speedup']:.2f}x",
          f"{r['paper_speedup']}x"] for r in rows],
        "MR-P speedup over ST (Section 5)")
    write_result("speedup_summary.txt", text)

    for r in rows:
        assert r["speedup"] == pytest.approx(r["paper_speedup"], abs=0.06), \
            (r["device"], r["lattice"])
        assert r["speedup"] > 1.0           # MR-P always wins

    by_key = {(r["device"], r["lattice"]): r["speedup"] for r in rows}
    # Shape: the 3D advantage is large on V100 and small on MI100.
    assert by_key[("V100", "D3Q19")] > by_key[("V100", "D2Q9")]
    assert by_key[("MI100", "D3Q19")] < by_key[("MI100", "D2Q9")]
