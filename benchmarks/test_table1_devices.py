"""E1 — regenerate paper Table 1 (device features)."""

from conftest import run_once

from repro.bench import render_table, table1_devices


def test_table1_devices(benchmark, write_result):
    data = run_once(benchmark, table1_devices)
    text = render_table(data["headers"], data["rows"],
                        "Table 1 — NVIDIA V100 and AMD MI100 features")
    write_result("table1_devices.txt", text)

    flat = {row[0]: row[1:] for row in data["rows"]}
    # Spot-check the paper's numbers.
    assert flat["Frequency"] == ["1,455 MHz", "1,502 MHz"]
    assert flat["CUDA/HIP Cores"] == ["5,120", "7,680"]
    assert flat["SM/CU counts"] == ["80", "120"]
    assert flat["L2 (unified)"] == ["6,144 KB", "8,192 KB"]
    assert flat["Bandwidth"] == ["900.00 GB/s", "1,228.86 GB/s"]
    assert flat["Compiler"] == ["nvcc v11.0.221", "hipcc 4.2"]
