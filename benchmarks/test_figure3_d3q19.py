"""E6 — regenerate paper Figure 3 (D3Q19 MFLUPS vs problem size).

Reproduction bands: MR-P beats ST by ~1.46x on the V100 but only ~1.14x
on the MI100; the V100 beats the MI100 for MR-P despite lower peak
bandwidth (the paper's headline cross-vendor result); MR-R loses ~800/~700
MFLUPS to the extra arithmetic.
"""

import pytest
from conftest import run_once

from repro.bench import figure3_d3q19, render_figure_text

PAPER_PLATEAU = {
    ("V100", "ST"): 2600, ("V100", "MR-P"): 3800, ("V100", "MR-R"): 3000,
    ("MI100", "ST"): 2800, ("MI100", "MR-P"): 3200, ("MI100", "MR-R"): 2500,
}


def test_figure3_d3q19(benchmark, write_result):
    from repro.bench import figure_to_csv, figure_to_svg

    panels = run_once(benchmark, figure3_d3q19)
    write_result("figure3_d3q19.txt", render_figure_text(panels))
    write_result("figure3_d3q19.csv", figure_to_csv(panels))
    write_result("figure3_d3q19.svg",
                 figure_to_svg(panels, "Figure 3 - D3Q19 performance"))

    plateau = {}
    for panel in panels:
        for scheme, series in panel.series.items():
            assert series[-1] >= max(series) * 0.98
            roof = panel.rooflines["ST" if scheme == "ST" else "MR"]
            assert max(series) <= roof
            plateau[(panel.device, scheme)] = series[-1]
            assert series[-1] == pytest.approx(
                PAPER_PLATEAU[(panel.device, scheme)], rel=0.10
            )

    # Speedups: strong on V100, modest on MI100 (Section 5).
    v_speedup = plateau[("V100", "MR-P")] / plateau[("V100", "ST")]
    a_speedup = plateau[("MI100", "MR-P")] / plateau[("MI100", "ST")]
    assert 1.3 < v_speedup < 1.6
    assert 1.05 < a_speedup < 1.25

    # Cross-vendor anomaly: V100 beats MI100 for MR-P with D3Q19.
    assert plateau[("V100", "MR-P")] > plateau[("MI100", "MR-P")]
    # ...but not for ST.
    assert plateau[("MI100", "ST")] > plateau[("V100", "ST")]

    # MR-R penalties ~800 (V100) / ~700 (MI100) MFLUPS.
    assert (plateau[("V100", "MR-P")] - plateau[("V100", "MR-R")]
            == pytest.approx(800, abs=200))
    assert (plateau[("MI100", "MR-P")] - plateau[("MI100", "MR-R")]
            == pytest.approx(700, abs=200))
