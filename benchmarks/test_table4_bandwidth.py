"""E4 — regenerate paper Table 4 / Section 4 text (sustained bandwidth).

Our sustained bandwidth = modelled MFLUPS x kernel-measured DRAM traffic;
the reproduction bands are the paper's fractions of peak: ~85-88% for ST
on the V100, ~68-75% for MR on the V100, ~69-73% for ST on the MI100, and
the MI100 D3Q19 MR anomaly at ~42%.
"""

import pytest
from conftest import run_once

from repro.bench import render_table, table4_bandwidth

# Fraction-of-peak bands per (device, pattern, lattice) from Section 4.
PAPER_FRACTIONS = {
    ("V100", "ST", "D2Q9"): 0.85, ("V100", "ST", "D3Q19"): 0.88,
    ("V100", "MR", "D2Q9"): 0.75, ("V100", "MR", "D3Q19"): 0.68,
    ("MI100", "ST", "D2Q9"): 0.72, ("MI100", "ST", "D3Q19"): 0.69,
    ("MI100", "MR", "D2Q9"): 0.67, ("MI100", "MR", "D3Q19"): 0.42,
}


def test_table4_bandwidth(benchmark, write_result):
    data = run_once(benchmark, table4_bandwidth)

    rows = [[r["device"], r["pattern"],
             f"{r['D2Q9']:.0f} GB/s ({r['D2Q9_fraction']:.0%})",
             f"{r['D3Q19']:.0f} GB/s ({r['D3Q19_fraction']:.0%})"]
            for r in data["rows"]]
    text = render_table(["GPU", "Model", "D2Q9", "D3Q19"], rows,
                        "Table 4 — sustained bandwidth (fraction of peak)")
    write_result("table4_bandwidth.txt", text)

    by_key = {(r["device"], r["pattern"]): r for r in data["rows"]}
    for (dev, pattern, lat), frac in PAPER_FRACTIONS.items():
        got = by_key[(dev, pattern)][f"{lat}_fraction"]
        assert got == pytest.approx(frac, abs=0.05), (dev, pattern, lat)

    # Headline shape: ST sustains a higher fraction of peak than MR.
    for dev in ("V100", "MI100"):
        for lat in ("D2Q9", "D3Q19"):
            assert (by_key[(dev, "ST")][f"{lat}_fraction"]
                    > by_key[(dev, "MR")][f"{lat}_fraction"])
