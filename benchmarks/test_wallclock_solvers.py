"""Honest wall-clock throughput of this library's components (CPU).

These are *our* Python/NumPy numbers, clearly labelled — not the paper's
GPU measurements. They document what a user should expect from the
reference solvers and how much slower the traffic-instrumented virtual-GPU
kernels are (they exist for measurement fidelity, not speed).
"""

import numpy as np
import pytest

from repro.gpu import KernelProblem, MRKernel, STKernel, V100
from repro.lattice import get_lattice
from repro.solver import channel_problem, periodic_problem
from repro.validation import taylor_green_fields


def _mflups(n_fluid, result_seconds):
    return n_fluid / result_seconds / 1e6


class TestReferenceSolvers:
    @pytest.mark.parametrize("scheme", ["ST", "MR-P", "MR-R"])
    def test_d2q9_step(self, benchmark, scheme):
        shape = (128, 128)
        tau = 0.8
        rho0, u0 = taylor_green_fields(shape, 0.0, (tau - 0.5) / 3, 0.03)
        solver = periodic_problem(scheme, "D2Q9", shape, tau,
                                  rho0=rho0, u0=u0)
        benchmark(solver.step)
        assert np.isfinite(solver.density()).all()

    @pytest.mark.parametrize("scheme", ["ST", "MR-P", "MR-R"])
    def test_d3q19_step(self, benchmark, scheme):
        solver = channel_problem(scheme, "D3Q19", (32, 24, 24), tau=0.8)
        benchmark(solver.step)
        assert np.isfinite(solver.density()).all()

    def test_d2q9_channel_step(self, benchmark):
        solver = channel_problem("MR-P", "D2Q9", (192, 66), tau=0.8)
        benchmark(solver.step)
        assert solver.diagnostics.max_speed() < 0.3


class TestVirtualGPUKernels:
    def test_st_kernel_step(self, benchmark):
        lat = get_lattice("D2Q9")
        prob = KernelProblem(lat, (64, 64), 0.8, mode="periodic")
        kernel = STKernel(prob, V100)
        benchmark(kernel.step)

    def test_mr_kernel_step(self, benchmark):
        lat = get_lattice("D2Q9")
        prob = KernelProblem(lat, (64, 64), 0.8, mode="periodic")
        kernel = MRKernel(prob, V100, tile_cross=(16,), w_t=8)
        benchmark(kernel.step)

    def test_aa_kernel_step(self, benchmark):
        from repro.gpu import AAKernel

        lat = get_lattice("D2Q9")
        prob = KernelProblem(lat, (64, 64), 0.8, mode="periodic")
        kernel = AAKernel(prob, V100)
        benchmark(kernel.step)

    def test_indirect_kernel_step(self, benchmark):
        from repro.gpu import STIndirectKernel

        lat = get_lattice("D2Q9")
        prob = KernelProblem(lat, (64, 64), 0.8, mode="periodic")
        kernel = STIndirectKernel(prob, V100)
        benchmark(kernel.step)


class TestExtensions:
    def test_refined_step(self, benchmark):
        from repro.refinement import RefinedTaylorGreen2D

        tg = RefinedTaylorGreen2D(shape=(48, 48), band=(16, 32))
        benchmark(tg.step)

    def test_power_law_step(self, benchmark):
        from repro.geometry import periodic_box
        from repro.solver import PowerLawMRPSolver

        lat = get_lattice("D2Q9")
        rng = np.random.default_rng(0)
        s = PowerLawMRPSolver(lat, periodic_box((96, 96)), 0.7,
                              consistency=0.05, exponent=0.7,
                              u0=0.02 * rng.standard_normal((2, 96, 96)))
        benchmark(s.step)


class TestCoreKernels:
    def test_collision_bgk_d3q19(self, benchmark, rng=np.random.default_rng(0)):
        from repro.core import BGKCollision, equilibrium

        lat = get_lattice("D3Q19")
        shape = (24, 24, 24)
        rho = 1 + 0.02 * rng.standard_normal(shape)
        u = 0.02 * rng.standard_normal((3, *shape))
        f = equilibrium(lat, rho, u)
        op = BGKCollision(0.8)
        benchmark(op, lat, f)

    def test_collision_recursive_d3q19(self, benchmark,
                                       rng=np.random.default_rng(0)):
        from repro.core import RecursiveRegularizedCollision, equilibrium

        lat = get_lattice("D3Q19")
        shape = (24, 24, 24)
        rho = 1 + 0.02 * rng.standard_normal(shape)
        u = 0.02 * rng.standard_normal((3, *shape))
        f = equilibrium(lat, rho, u)
        op = RecursiveRegularizedCollision(0.8)
        benchmark(op, lat, f)

    def test_moment_projection_d3q19(self, benchmark,
                                     rng=np.random.default_rng(0)):
        from repro.core import moments_from_f

        lat = get_lattice("D3Q19")
        f = rng.random((19, 32, 32, 32))
        benchmark(moments_from_f, lat, f)

    def test_streaming_d3q19(self, benchmark, rng=np.random.default_rng(0)):
        from repro.core import stream_push

        lat = get_lattice("D3Q19")
        f = rng.random((19, 32, 32, 32))
        out = np.empty_like(f)
        benchmark(stream_push, lat, f, out)
