"""Sparse-backend MLUPS: compact fluid-node lists vs dense kernels.

The acceptance bar for the sparse backend is a >=1.5x MLUPS win over the
fused dense kernels on a low-fluid-fraction (<=15% fluid) domain — the
regime its compact ``(Q, n_fluid)`` state is built for (see the traffic
model in docs/ALGORITHMS.md). The measured ratio on an unloaded host is
~8x on the 85%-solid porous cell, because the dense kernels stream and
collide every solid node while the sparse cores touch fluid columns
only; CI asserts the conservative band so a loaded runner cannot flake
the suite, and the rendered artefact records the actual numbers.
"""

import json

from repro.obs.bench import BenchCell, format_records, run_cell
from repro.obs.profile import compare_backends, format_backend_comparison


class TestSparseThroughput:
    def test_porous_sparse_speedup(self, write_result, results_dir):
        """Sparse clears >=1.5x over fused on a <=15%-fluid porous cell."""
        cells = [
            BenchCell("MR-P", "D2Q9", backend, "porous", (192, 192),
                      steps=10, repeats=3)
            for backend in ("fused", "sparse")
        ]
        records = [run_cell(cell, suite="paper-bench") for cell in cells]
        write_result("sparse_mlups_porous_d2q9.txt", format_records(records))
        (results_dir / "sparse_mlups_porous_d2q9.json").write_text(
            json.dumps({"records": [r.to_dict() for r in records]},
                       indent=2, sort_keys=True) + "\n")

        fused, sparse = records
        phi = fused.n_fluid / (192 * 192)
        assert phi <= 0.15 + 1e-9, phi
        assert sparse.n_fluid == fused.n_fluid
        assert sparse.mlups >= 1.5 * fused.mlups, (
            f"sparse {sparse.mlups:.2f} MLUPS vs fused {fused.mlups:.2f}")

    def test_porous_sparse_speedup_d3q19(self, write_result, results_dir):
        """The 3D compact gather keeps the band on D3Q19."""
        cells = [
            BenchCell("ST", "D3Q19", backend, "porous", (40, 40, 40),
                      steps=8, repeats=3)
            for backend in ("fused", "sparse")
        ]
        records = [run_cell(cell, suite="paper-bench") for cell in cells]
        write_result("sparse_mlups_porous_d3q19.txt", format_records(records))
        fused, sparse = records
        assert fused.n_fluid / 40 ** 3 <= 0.16
        assert sparse.mlups >= 1.5 * fused.mlups

    def test_cylinder_comparison_covers_sparse(self, write_result,
                                               write_bench_records):
        """``compare_backends(problem="cylinder")`` runs the sparse backend
        on a masked obstacle at machine parity with the reference."""
        result = compare_backends("MR-R", "D2Q9", shape=(128, 66), steps=12,
                                  problem="cylinder")
        write_result("backend_mlups_cylinder_d2q9.txt",
                     format_backend_comparison(result))
        write_bench_records("backend_mlups_cylinder_d2q9.json", result)
        rows = {row["backend"]: row for row in result["backends"]}
        assert result["problem"] == "cylinder"
        assert {"reference", "fused", "sparse"} <= set(rows)
        assert rows["sparse"]["max_abs_diff"] < 1e-13
        assert rows["fused"]["max_abs_diff"] < 1e-13
        # The obstacle + walls make the domain ~90% fluid — sparse should
        # at least hold its own against fused there and win outright on
        # the porous cells above.
        assert rows["sparse"]["mlups"] > 0
