"""Extension bench: the stability claim behind regularization (Section 2).

"Recursive regularization builds on its projective counterpart ...
improving numerical stability" — measured here as the largest initial
vortex amplitude each scheme survives on an under-resolved Taylor-Green
run, across relaxation times approaching the tau -> 1/2 inviscid limit.
"""

from conftest import run_once

from repro.analysis.stability import stability_map
from repro.bench import render_table

TAUS = (0.51, 0.55, 0.6)


def test_stability_margins(benchmark, write_result):
    margins = run_once(
        benchmark,
        lambda: stability_map(taus=TAUS, iters=6),
    )

    rows = []
    for tau in TAUS:
        rows.append([tau] + [f"{margins[(s, tau)]:.3f}"
                             for s in ("ST", "MR-P", "MR-R")])
    write_result("stability_margin.txt", render_table(
        ["tau", "ST", "MR-P", "MR-R"], rows,
        "Max stable Taylor-Green amplitude (24^2, 400 steps)"))

    for tau in TAUS:
        st = margins[("ST", tau)]
        mrr = margins[("MR-R", tau)]
        # The recursive scheme's margin is the largest (the paper's
        # stability motivation); allow bisection granularity slack.
        assert mrr >= st - 0.02, (tau, st, mrr)
        assert mrr >= margins[("MR-P", tau)] - 0.02, tau

    # Margins grow with viscosity for every scheme.
    for scheme in ("ST", "MR-P", "MR-R"):
        assert margins[(scheme, 0.6)] >= margins[(scheme, 0.51)] - 0.02
