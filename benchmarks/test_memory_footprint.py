"""E7 — Section 4.1 memory-footprint claims.

"about 2GB for D2Q9 ... and 4.2GB for D3Q19 ... against the 1.3GB and
2.23GB required by the MR models ... reducing the memory requirements in
about a 35% and 47% respectively" (15 million fluid points).
"""

import pytest
from conftest import run_once

from repro.bench import footprint_summary, render_table
from repro.gpu import V100
from repro.lattice import get_lattice
from repro.perf import max_problem_size


def test_footprint_at_15m_nodes(benchmark, write_result):
    rows = run_once(benchmark, footprint_summary)

    text = render_table(
        ["lattice", "scheme", "ours", "paper"],
        [[r["lattice"], r["scheme"],
          f"{r['gib']:.2f} GiB" if r["scheme"] != "reduction" else f"{r['gib']:.1%}",
          f"{r['paper_gb']} GB" if r["scheme"] != "reduction" else f"{r['paper_gb']:.0%}"]
         for r in rows],
        "Memory footprint at 15M fluid nodes (Section 4.1)")
    write_result("memory_footprint.txt", text)

    by_key = {(r["lattice"], r["scheme"]): r["gib"] for r in rows}
    assert by_key[("D2Q9", "ST")] == pytest.approx(2.0, abs=0.05)
    assert by_key[("D2Q9", "MR")] == pytest.approx(1.3, abs=0.05)
    assert by_key[("D3Q19", "ST")] == pytest.approx(4.25, abs=0.05)
    assert by_key[("D3Q19", "MR")] == pytest.approx(2.23, abs=0.01)
    # Reductions: ~1/3 in 2D (paper rounds to 35%), ~47% in 3D.
    assert by_key[("D2Q9", "reduction")] == pytest.approx(1 / 3, abs=0.02)
    assert by_key[("D3Q19", "reduction")] == pytest.approx(0.47, abs=0.01)


def test_three_way_footprint_comparison(benchmark, write_result):
    """Extension: where the AA pattern (Bailey 2009) sits between ST and MR.

    AA halves the resident state at unchanged 2Q traffic; MR reduces both.
    """
    from repro.perf import bytes_per_flup, state_values_per_node

    def compute():
        rows = []
        for lname in ("D2Q9", "D3Q19", "D3Q27"):
            lat = get_lattice(lname)
            for scheme, traffic_scheme in (("ST", "ST"), ("AA", "ST"),
                                           ("MR", "MR")):
                rows.append([
                    lname, scheme,
                    state_values_per_node(lat, scheme),
                    bytes_per_flup(lat, traffic_scheme),
                ])
        return rows

    rows = run_once(benchmark, compute)
    write_result("footprint_three_way.txt", render_table(
        ["lattice", "scheme", "state doubles/node", "traffic B/update"],
        rows, "ST vs AA-pattern vs MR: state and traffic"))

    by_key = {(r[0], r[1]): (r[2], r[3]) for r in rows}
    for lname in ("D2Q9", "D3Q19", "D3Q27"):
        st_state, st_traffic = by_key[(lname, "ST")]
        aa_state, aa_traffic = by_key[(lname, "AA")]
        mr_state, mr_traffic = by_key[(lname, "MR")]
        assert aa_state * 2 == st_state          # AA halves the footprint
        assert aa_traffic == st_traffic          # ...at unchanged traffic
        assert mr_traffic < aa_traffic           # MR also cuts traffic
    # In 3D the MR state matches AA's within one double...
    assert abs(by_key[("D3Q19", "MR")][0] - by_key[("D3Q19", "AA")][0]) <= 1
    # ...and undercuts it for Q27.
    assert by_key[("D3Q27", "MR")][0] < by_key[("D3Q27", "AA")][0]


def test_mr_fits_larger_problems(benchmark):
    """Corollary: on a 16 GB V100, MR fits ~1.9x more D3Q19 nodes."""
    d3 = get_lattice("D3Q19")

    def compute():
        st = max_problem_size(d3, "ST", V100.memory_bytes())
        mr = max_problem_size(d3, "MR", V100.memory_bytes())
        return st, mr

    st, mr = run_once(benchmark, compute)
    assert mr / st == pytest.approx(1.9, abs=0.01)
    assert st > 50_000_000          # >50M D3Q19 nodes even for ST
