"""E5 — regenerate paper Figure 2 (D2Q9 MFLUPS vs problem size).

Reproduction bands: rising-then-flat series; at saturation MR-P beats ST
by ~1.32x (V100) / ~1.38x (MI100); MR-R is within a few percent of MR-P in
2D on both devices; every series stays below its roofline.
"""

import pytest
from conftest import run_once

from repro.bench import figure2_d2q9, render_figure_text

PAPER_PLATEAU = {
    ("V100", "ST"): 5300, ("V100", "MR-P"): 7000,
    ("MI100", "ST"): 6200, ("MI100", "MR-P"): 8600,
}


def test_figure2_d2q9(benchmark, write_result):
    from repro.bench import figure_to_csv, figure_to_svg

    panels = run_once(benchmark, figure2_d2q9)
    write_result("figure2_d2q9.txt", render_figure_text(panels))
    write_result("figure2_d2q9.csv", figure_to_csv(panels))
    write_result("figure2_d2q9.svg",
                 figure_to_svg(panels, "Figure 2 - D2Q9 performance"))

    for panel in panels:
        for scheme, series in panel.series.items():
            # Rising to a plateau: last point >= every earlier point (2%).
            assert series[-1] >= max(series) * 0.98
            # Below the matching roofline.
            roof = panel.rooflines["ST" if scheme == "ST" else "MR"]
            assert max(series) <= roof

        st = panel.series["ST"][-1]
        mrp = panel.series["MR-P"][-1]
        mrr = panel.series["MR-R"][-1]
        assert mrp == pytest.approx(PAPER_PLATEAU[(panel.device, "MR-P")],
                                    rel=0.10)
        assert st == pytest.approx(PAPER_PLATEAU[(panel.device, "ST")],
                                   rel=0.10)
        # MR-P wins clearly; MR-R ~ MR-P in 2D (Section 4.2).
        assert 1.2 < mrp / st < 1.55
        assert mrr == pytest.approx(mrp, rel=0.05)

    # Small problems underutilize the device (left end of the figure).
    for panel in panels:
        assert panel.series["MR-P"][0] < 0.75 * panel.series["MR-P"][-1]
