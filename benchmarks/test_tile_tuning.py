"""Extension bench: automated tile tuning (the paper's Section 3.2 rule).

Ranks all legal MR tile configurations per device and lattice with the
calibrated model, writes the tables, and asserts the device-dependent
optima: the paper's 8x8x1 D3Q19 tile is optimal-class on both devices,
while for D3Q27 the V100 keeps 8x8 but the MI100 must shrink to 8x4 to
respect the two-blocks-per-CU rule on its 64 KB LDS.
"""

from conftest import run_once

from repro.bench import render_table
from repro.gpu import MI100, V100
from repro.lattice import get_lattice
from repro.perf import sweep_tiles


def _rank_all():
    out = {}
    for lname in ("D3Q19", "D3Q27"):
        lat = get_lattice(lname)
        for dev in (V100, MI100):
            out[(lname, dev.name)] = sweep_tiles(lat, (256, 256, 256), dev)
    return out


def test_tile_tuning(benchmark, write_result):
    rankings = run_once(benchmark, _rank_all)

    rows = []
    for (lname, dev), ranking in rankings.items():
        top = ranking[0]
        rows.append([lname, dev, str(top.tile_cross), top.w_t,
                     top.prediction.occupancy.blocks_per_sm,
                     f"{top.mflups:,.0f}", top.prediction.bound])
    write_result("tile_tuning.txt", render_table(
        ["lattice", "device", "tile", "w_t", "blk/SM", "MFLUPS", "bound"],
        rows, "MR tile auto-tuning (Section 3.2 rule, automated)"))

    # Every optimum satisfies the paper's >= 2 blocks/SM rule.
    for ranking in rankings.values():
        assert ranking[0].prediction.occupancy.meets_two_block_rule

    # D3Q19: the paper's 8x8 tile is within 2% of the best on both devices.
    for dev in ("V100", "MI100"):
        ranking = rankings[("D3Q19", dev)]
        best = ranking[0].mflups
        paper_cfg = [c for c in ranking
                     if c.tile_cross == (8, 8) and c.w_t == 1]
        assert paper_cfg, dev
        assert paper_cfg[0].mflups >= 0.98 * best, dev

    # D3Q27: device-dependent optimum (the MI100 LDS cliff).
    v_best = rankings[("D3Q27", "V100")][0]
    a_best = rankings[("D3Q27", "MI100")][0]
    assert v_best.tile_cross == (8, 8)
    assert a_best.tile_cross[0] * a_best.tile_cross[1] < 64
