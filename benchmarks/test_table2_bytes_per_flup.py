"""E2 — regenerate paper Table 2 (bytes per fluid lattice update).

The analytic B/F (2Q / 2M doubles) is checked against DRAM traffic
*measured* from executing the virtual-GPU kernels on the channel proxy
app — the ST row within 2% (boundary extras) and the MR row within 1%.
"""

import pytest
from conftest import run_once

from repro.bench import render_table, table2_bytes_per_flup

PAPER = {("ST", "D2Q9"): 144, ("ST", "D3Q19"): 304,
         ("MR", "D2Q9"): 96, ("MR", "D3Q19"): 160}


def test_table2_bytes_per_flup(benchmark, write_result):
    data = run_once(benchmark, table2_bytes_per_flup)

    rows = [[r["pattern"], r["formula"], r["D2Q9"], r["D2Q9_measured"],
             r["D3Q19"], r["D3Q19_measured"]] for r in data["rows"]]
    text = render_table(
        ["Pattern", "B/F", "D2Q9", "D2Q9 meas.", "D3Q19", "D3Q19 meas."],
        rows, "Table 2 — bytes per fluid lattice update")
    write_result("table2_bytes_per_flup.txt", text)

    for r in data["rows"]:
        for lname in ("D2Q9", "D3Q19"):
            assert r[lname] == PAPER[(r["pattern"], lname)]
            assert r[f"{lname}_measured"] == pytest.approx(
                PAPER[(r["pattern"], lname)], rel=0.03
            )
