"""Ablation benches for the design choices called out in DESIGN.md.

* L2 halo sharing: without the cache model, MR column halos amplify DRAM
  reads by (tile+halo)/tile; with it they are shared between columns.
* Tile width: narrower columns mean proportionally more halo traffic.
* Circular shift vs double buffer: same traffic, ~half the footprint.
* ST block size: no effect on traffic (one thread per node either way).
"""

import numpy as np
import pytest
from conftest import run_once

from repro.gpu import KernelProblem, MemoryTracker, MRKernel, STKernel, V100
from repro.lattice import get_lattice
from repro.perf import state_bytes
from repro.perf.footprint import circular_shift_state_bytes


def _mr_traffic(tile, l2: bool, shape=(64, 64)):
    lat = get_lattice("D2Q9")
    rng = np.random.default_rng(1)
    rho0 = 1 + 0.02 * rng.standard_normal(shape)
    u0 = 0.02 * rng.standard_normal((2, *shape))
    prob = KernelProblem(lat, shape, 0.8, mode="periodic")
    tracker = MemoryTracker(l2_bytes=int(V100.l2_kb * 1024) if l2 else None)
    k = MRKernel(prob, V100, scheme="MR-P", tile_cross=tile,
                 tracker=tracker, rho0=rho0, u0=u0)
    k.step()
    stats = k.step()
    t = stats.traffic
    return {
        "dram_read": t.sector_bytes_read / stats.n_nodes,
        "logical_read": t.bytes_read / stats.n_nodes,
        "write": t.bytes_written / stats.n_nodes,
    }


class TestHaloTraffic:
    def test_l2_absorbs_halo_reads(self, benchmark):
        res = run_once(benchmark, lambda: (_mr_traffic((16,), l2=True),
                                           _mr_traffic((16,), l2=False)))
        with_l2, without_l2 = res
        assert with_l2["dram_read"] == pytest.approx(48, rel=0.01)
        assert without_l2["dram_read"] > 1.1 * with_l2["dram_read"]

    def test_halo_scales_with_tile_width(self, benchmark):
        def compute():
            return {t: _mr_traffic((t,), l2=False)["logical_read"]
                    for t in (4, 8, 16, 32)}

        reads = run_once(benchmark, compute)
        for t, val in reads.items():
            assert val == pytest.approx(48 * (t + 2) / t, rel=1e-6)
        assert reads[4] > reads[8] > reads[16] > reads[32]


class TestFootprintVariants:
    def test_circular_shift_vs_double_buffer(self, benchmark):
        """The shifted single array uses ~(1 + margin/N)/2 the memory of the
        double-buffered layout the B/F model assumes."""
        lat = get_lattice("D3Q19")

        def compute():
            n = 256 * 256 * 256
            margin = 2 * 256 * 256            # two layers
            return (circular_shift_state_bytes(lat, n, margin),
                    state_bytes(lat, "MR", n))

        single, double = run_once(benchmark, compute)
        assert single / double == pytest.approx(0.5, abs=0.01)

    def test_kernel_allocates_shifted_array(self, benchmark):
        """The MR kernel's real allocation matches the shifted model."""
        lat = get_lattice("D2Q9")
        shape = (32, 32)
        prob = KernelProblem(lat, shape, 0.8, mode="periodic")

        def build():
            return MRKernel(prob, V100, tile_cross=(8,))

        k = run_once(benchmark, build)
        expected = circular_shift_state_bytes(lat, 32 * 32, k.shift_elems)
        assert k.global_state_bytes == expected


class TestSTBlockSize:
    def test_traffic_independent_of_block_size(self, benchmark):
        lat = get_lattice("D2Q9")
        shape = (48, 48)
        prob = KernelProblem(lat, shape, 0.8, mode="periodic")

        def compute():
            out = {}
            for bs in (64, 256, 512):
                tr = MemoryTracker(l2_bytes=int(V100.l2_kb * 1024))
                k = STKernel(prob, V100, tracker=tr, block_size=bs)
                k.step()
                stats = k.step()
                out[bs] = stats.traffic.sector_bytes_total / stats.n_nodes
            return out

        traffic = run_once(benchmark, compute)
        vals = list(traffic.values())
        assert max(vals) - min(vals) < 0.5


class TestWindowTileHeight:
    def test_w_t_does_not_change_traffic(self, benchmark):
        """In our memory model the window tile height is traffic-neutral;
        the paper's observed z_t > 1 penalty comes from intra-warp access
        patterns that sector counting on whole-block accesses cannot see —
        recorded here as a known substitution limit."""
        def compute():
            return {w: _mr_traffic((8,), l2=True, shape=(64, 60))["dram_read"]
                    for w in (1, 2, 5)}

        reads = run_once(benchmark, compute)
        vals = list(reads.values())
        assert max(vals) - min(vals) < 0.5
