"""E9 — arithmetic-intensity and MR-R cost claims (Sections 4.2-4.3).

"The arithmetic intensity of MR-R is almost 60% higher than MR-P" (D2Q9,
V100) yet "the impact on performance ... is not significant" in 2D; with
D3Q19 "MFLUPS drop by about 800 for the V100 and 700 for the MI100".
"""

import pytest
from conftest import run_once

from repro.bench import intensity_summary, render_table


def test_intensity_and_penalties(benchmark, write_result):
    data = run_once(benchmark, intensity_summary)

    rows = [["D2Q9 AI ratio MR-R/MR-P", f"{data['ai_ratio_d2q9']:.2f}",
             f"~{data['paper_ai_ratio']}"]]
    for dev, v in data["d3q19_penalties"].items():
        rows.append([f"{dev} D3Q19 MR-R penalty",
                     f"{v['penalty']:.0f} MFLUPS",
                     f"~{v['paper_penalty']:.0f} MFLUPS"])
    write_result("arithmetic_intensity.txt",
                 render_table(["quantity", "ours", "paper"], rows,
                              "Recursive-regularization cost (E9)"))

    # "Almost 60% higher" arithmetic intensity: accept 1.3-1.8x.
    assert 1.3 < data["ai_ratio_d2q9"] < 1.8

    for dev, v in data["d3q19_penalties"].items():
        assert v["penalty"] == pytest.approx(v["paper_penalty"], abs=200), dev
        assert v["mrr"] < v["mrp"]


def test_mrr_free_in_2d(benchmark):
    """The 2D counterpart: MR-R ~ MR-P in MFLUPS despite the extra flops."""
    from repro.bench.summary import _plateau_mflups
    from repro.gpu import MI100, V100

    def compute():
        out = {}
        for dev in (V100, MI100):
            out[dev.name] = (
                _plateau_mflups(dev, "D2Q9", "MR-P"),
                _plateau_mflups(dev, "D2Q9", "MR-R"),
            )
        return out

    results = run_once(benchmark, compute)
    for dev, (mrp, mrr) in results.items():
        assert mrr == pytest.approx(mrp, rel=0.05), dev
